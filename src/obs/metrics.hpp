/// \file metrics.hpp
/// \brief Metrics registry: counters, gauges, and fixed-bucket histograms
/// keyed by a small label set ({rank, phase, collective, scheme} plus
/// free-form pairs), with CSV and newline-JSON exporters.
///
/// The registry is the reporting substrate that replaces ad-hoc per-rank
/// counter plumbing in the harnesses: a run's RankStats are folded into
/// labelled metrics once, and every consumer (tables, --json bench
/// summaries, CI artifacts) reads the same registry. Export order is
/// insertion order, so output is deterministic.
///
/// Not thread-safe: a registry belongs to one bench/driver thread (the
/// bench pool writes per-job results into pre-sized slots and registers
/// them sequentially after the join, like all other bench output).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sparse/types.hpp"

namespace psi::obs {

/// Ordered key=value label pairs identifying one metric series. Keys are
/// kept in insertion order for rendering; identity (fingerprint) is the
/// canonical "k1=v1,k2=v2" string over the pairs in sorted-key order.
class Labels {
 public:
  Labels() = default;

  Labels& set(const std::string& key, const std::string& value);
  Labels& set(const std::string& key, const char* value) {
    return set(key, std::string(value));
  }
  Labels& set(const std::string& key, long long value);
  Labels& set(const std::string& key, int value) {
    return set(key, static_cast<long long>(value));
  }

  // Convenience setters for the canonical label keys.
  Labels& rank(int r) { return set("rank", r); }
  Labels& phase(const std::string& p) { return set("phase", p); }
  Labels& collective(const std::string& c) { return set("collective", c); }
  Labels& scheme(const std::string& s) { return set("scheme", s); }

  const std::vector<std::pair<std::string, std::string>>& pairs() const {
    return pairs_;
  }
  /// Canonical identity string: sorted by key, "k=v" joined with commas.
  std::string fingerprint() const;
  /// Value of `key`, or "" when absent.
  std::string get(const std::string& key) const;

 private:
  std::vector<std::pair<std::string, std::string>> pairs_;
};

struct Counter {
  Count value = 0;
  void add(Count delta) { value += delta; }
  void increment() { value += 1; }
};

struct Gauge {
  double value = 0.0;
  void set(double v) { value = v; }
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the first
/// bounds.size() buckets; an implicit +inf bucket catches the rest.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative count of observations <= bounds()[i]; counts().back() is the
  /// total (the +inf bucket included).
  const std::vector<Count>& counts() const { return counts_; }
  Count total_count() const { return counts_.empty() ? 0 : counts_.back(); }
  double sum() const { return sum_; }
  double max() const { return max_; }

  /// Quantile extraction for SLO reporting (p99/p999 of per-tenant latency
  /// series). Finds the bucket holding the q-th observation (nearest-rank on
  /// the cumulative counts, q in [0, 1]) and interpolates linearly inside
  /// it; the +inf bucket reports max(). Exact whenever the rank lands in a
  /// single-valued bucket — within a bucket the error is bounded by the
  /// bucket width, which is why SLO-critical series should pick bounds
  /// around their objectives. Returns 0 for an empty histogram.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }

 private:
  std::vector<double> bounds_;
  std::vector<Count> counts_;  ///< cumulative, size bounds_.size() + 1
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Registry of named, labelled metrics. Re-requesting the same
/// (name, labels) returns the same instance; references remain valid for
/// the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// `bounds` is only consulted on first creation of the series.
  Histogram& histogram(const std::string& name, const Labels& labels,
                       const std::vector<double>& bounds);

  std::size_t size() const { return entries_.size(); }

  /// CSV: header "name,type,labels,value,sum,count,max"; histograms render
  /// one row per bucket plus a summary row.
  std::string to_csv() const;
  /// Newline-delimited JSON: one object per metric, labels inlined as an
  /// object, histograms with bounds/cumulative counts.
  std::string to_ndjson() const;

  void write_csv(const std::string& path) const;
  void write_ndjson(const std::string& path) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  Entry& find_or_create(const std::string& name, const Labels& labels,
                        Kind kind, const std::vector<double>* bounds);

  std::vector<std::unique_ptr<Entry>> entries_;   ///< insertion order
  std::unordered_map<std::string, Entry*> index_; ///< "name|fingerprint" -> entry
};

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

}  // namespace psi::obs
