#include "check/repro.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace psi::check {

namespace {

constexpr const char* kHeader = "psi-check-repro v1";

void append_double(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += key;
  out += ' ';
  out += buf;
  out += '\n';
}

void append_u64(std::string& out, const char* key, std::uint64_t v) {
  out += key;
  out += ' ';
  out += std::to_string(v);
  out += '\n';
}

double parse_double(const std::string& token, const std::string& line) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  PSI_CHECK_MSG(errno == 0 && end != nullptr && *end == '\0',
                "repro: bad number '" << token << "' in line: " << line);
  return v;
}

std::uint64_t parse_u64(const std::string& token, const std::string& line) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  PSI_CHECK_MSG(errno == 0 && end != nullptr && *end == '\0',
                "repro: bad integer '" << token << "' in line: " << line);
  return static_cast<std::uint64_t>(v);
}

}  // namespace

std::string to_text(const Repro& repro) {
  const CaseSpec& spec = repro.spec;
  std::string out(kHeader);
  out += '\n';
  append_u64(out, "matrix_seed", spec.matrix_seed);
  append_u64(out, "n", static_cast<std::uint64_t>(spec.n));
  append_double(out, "degree", spec.degree);
  append_u64(out, "unsymmetric", spec.unsymmetric ? 1 : 0);
  append_u64(out, "grid_rows", static_cast<std::uint64_t>(spec.grid_rows));
  append_u64(out, "grid_cols", static_cast<std::uint64_t>(spec.grid_cols));
  append_u64(out, "fault_seed", spec.fault_seed);
  append_u64(out, "schedule_seed", spec.schedule_seed);
  append_u64(out, "schedules", static_cast<std::uint64_t>(spec.schedules));
  append_double(out, "delay_bound", spec.delay_bound);
  append_u64(out, "plant_bug", spec.plant_bug ? 1 : 0);
  for (const FaultRuleSpec& rule : spec.fault_rules) {
    out += "rule";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  " drop=%.17g dup=%.17g delay_prob=%.17g delay=%.17g"
                  " comm_class=%d",
                  rule.drop_prob, rule.dup_prob, rule.delay_prob, rule.delay,
                  rule.comm_class);
    out += buf;
    out += '\n';
  }
  out += "signature ";
  out += repro.signature;
  out += '\n';
  return out;
}

Repro parse_repro(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  PSI_CHECK_MSG(std::getline(in, line) && line == kHeader,
                "repro: missing '" << kHeader << "' header");
  Repro repro;
  bool have_signature = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t space = line.find(' ');
    PSI_CHECK_MSG(space != std::string::npos,
                  "repro: malformed line: " << line);
    const std::string key = line.substr(0, space);
    const std::string rest = line.substr(space + 1);
    if (key == "matrix_seed") {
      repro.spec.matrix_seed = parse_u64(rest, line);
    } else if (key == "n") {
      repro.spec.n = static_cast<Int>(parse_u64(rest, line));
    } else if (key == "degree") {
      repro.spec.degree = parse_double(rest, line);
    } else if (key == "unsymmetric") {
      repro.spec.unsymmetric = parse_u64(rest, line) != 0;
    } else if (key == "grid_rows") {
      repro.spec.grid_rows = static_cast<int>(parse_u64(rest, line));
    } else if (key == "grid_cols") {
      repro.spec.grid_cols = static_cast<int>(parse_u64(rest, line));
    } else if (key == "fault_seed") {
      repro.spec.fault_seed = parse_u64(rest, line);
    } else if (key == "schedule_seed") {
      repro.spec.schedule_seed = parse_u64(rest, line);
    } else if (key == "schedules") {
      repro.spec.schedules = static_cast<int>(parse_u64(rest, line));
    } else if (key == "delay_bound") {
      repro.spec.delay_bound = parse_double(rest, line);
    } else if (key == "plant_bug") {
      repro.spec.plant_bug = parse_u64(rest, line) != 0;
    } else if (key == "rule") {
      FaultRuleSpec rule;
      std::istringstream fields(rest);
      std::string field;
      while (fields >> field) {
        const std::size_t eq = field.find('=');
        PSI_CHECK_MSG(eq != std::string::npos,
                      "repro: malformed rule field '" << field << "'");
        const std::string name = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        if (name == "drop") {
          rule.drop_prob = parse_double(value, line);
        } else if (name == "dup") {
          rule.dup_prob = parse_double(value, line);
        } else if (name == "delay_prob") {
          rule.delay_prob = parse_double(value, line);
        } else if (name == "delay") {
          rule.delay = parse_double(value, line);
        } else if (name == "comm_class") {
          rule.comm_class =
              static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
        } else {
          PSI_CHECK_MSG(false, "repro: unknown rule field '" << name << "'");
        }
      }
      repro.spec.fault_rules.push_back(rule);
    } else if (key == "signature") {
      repro.signature = rest;
      have_signature = true;
    } else {
      PSI_CHECK_MSG(false, "repro: unknown key '" << key << "'");
    }
  }
  PSI_CHECK_MSG(have_signature, "repro: missing signature line");
  return repro;
}

void write_repro_file(const std::string& path, const Repro& repro) {
  std::ofstream out(path, std::ios::binary);
  PSI_CHECK_MSG(out.good(), "repro: cannot open '" << path << "' for write");
  const std::string text = to_text(repro);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  PSI_CHECK_MSG(out.good(), "repro: write to '" << path << "' failed");
}

Repro read_repro_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PSI_CHECK_MSG(in.good(), "repro: cannot open '" << path << "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parse_repro(text.str());
}

}  // namespace psi::check
