/// \file campaign.hpp
/// \brief Seeded fuzz campaigns over the differential oracle.
///
/// A campaign derives every trial's CaseSpec statelessly from
/// (campaign seed, trial index) — trial 17 of seed 42 is the same problem
/// on every host, and campaigns are resumable/parallelizable by index
/// range. Each trial runs the full differential oracle; a failing trial is
/// greedily shrunk and written out as a replayable `*.repro` file. Per-trial
/// statistics stream as NDJSON (one object per line) and fold into an
/// obs::MetricsRegistry when one is attached.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "check/oracle.hpp"
#include "check/shrink.hpp"

namespace psi::obs {
class MetricsRegistry;
}

namespace psi::check {

struct CampaignOptions {
  std::uint64_t seed = 1;
  int trials = 100;
  /// Stop early (after the current trial) once this much host wall time has
  /// elapsed; 0 = no budget. The CI smoke campaign uses this.
  double time_budget_seconds = 0.0;
  /// Enable the planted ReduceState arrival-order bug in every trial
  /// (self-test of the oracle's detection power).
  bool plant_bug = false;
  /// Shrink failing trials before writing their repro.
  bool shrink_failures = true;
  int shrink_attempts = 600;
  /// Directory the `trial<N>.repro` files are written into ("" = don't
  /// write repro files).
  std::string repro_dir;
  /// Stop after the first failing trial.
  bool stop_on_failure = false;
};

struct CampaignResult {
  int trials_run = 0;
  int failures = 0;
  /// Index and signature of the first failing trial (-1 / "" when clean).
  int first_failure_trial = -1;
  std::string first_failure_signature;
  /// Repro path of the first failure ("" when clean or repro_dir unset).
  std::string first_repro_path;
  Count total_events = 0;
  double max_ref_err = 0.0;
  double wall_seconds = 0.0;
};

/// The spec of trial `index` under campaign seed `seed` (pure function).
CaseSpec trial_spec(std::uint64_t seed, int index, bool plant_bug);

/// Runs the campaign. `ndjson` (optional) receives one JSON object line per
/// trial; `metrics` (optional) accumulates campaign counters/gauges.
CampaignResult run_campaign(const CampaignOptions& options,
                            std::ostream* ndjson,
                            obs::MetricsRegistry* metrics);

}  // namespace psi::check
