/// \file shrink.hpp
/// \brief Greedy spec minimization for failing differential trials.
///
/// Given a failing CaseSpec and its signature, the shrinker repeatedly
/// proposes strictly smaller candidate specs (smaller matrix, lower degree,
/// fewer fault rules, tighter delay bound, smaller grid, fewer schedule
/// legs) and accepts a candidate when it still fails with the same failure
/// KIND (signature_kind — the exact block/value text legitimately moves as
/// the problem changes shape). It iterates to a fixpoint: one full round in
/// which no candidate is accepted, or the attempt budget is spent. Because
/// run_case is deterministic, shrinking is too: same input, same minimum.
#pragma once

#include <string>

#include "check/oracle.hpp"

namespace psi::check {

struct ShrinkResult {
  CaseSpec spec;          ///< minimized spec (== input when nothing shrank)
  std::string signature;  ///< failure signature of the minimized spec
  int attempts = 0;       ///< run_case executions spent
  int accepted = 0;       ///< candidates that kept the failure alive
};

/// `signature` must be the failure run_case(failing) produces; pass the one
/// already in hand to avoid a redundant execution. `max_attempts` bounds the
/// total number of candidate executions.
ShrinkResult shrink(const CaseSpec& failing, const std::string& signature,
                    int max_attempts = 600);

}  // namespace psi::check
