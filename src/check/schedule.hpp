/// \file schedule.hpp
/// \brief Seeded adversarial schedule: the concrete sim::SchedulePolicy the
/// check subsystem explores schedule space with.
///
/// Seed semantics: seed 0 is the identity schedule (FIFO tie-break, zero
/// jitter) — the engine's native order, usable as the baseline leg of a
/// differential trial. Any other seed permutes same-timestamp pop order via
/// a stateless hash of the event sequence number and, when `delay_bound` is
/// positive, adds an independent uniform wire delay in [0, delay_bound) to
/// every network message. Both streams are pure functions of (seed, draw
/// index), so a schedule replays exactly: same seed, same schedule.
#pragma once

#include <cstdint>

#include "sim/schedule.hpp"

namespace psi::check {

class AdversarialSchedule final : public sim::SchedulePolicy {
 public:
  explicit AdversarialSchedule(std::uint64_t seed,
                               sim::SimTime delay_bound = 0.0);

  std::uint64_t seed() const { return seed_; }
  sim::SimTime delay_bound() const { return delay_bound_; }

  std::uint64_t tie_priority(std::uint64_t seq) override;
  sim::SimTime network_delay(int src, int dst, std::int64_t tag, Count bytes,
                             int comm_class, sim::SimTime post) override;

 private:
  std::uint64_t seed_;
  sim::SimTime delay_bound_;
  std::uint64_t delay_draws_ = 0;  ///< per-post delay stream position
};

}  // namespace psi::check
