/// \file schedule.hpp
/// \brief Seeded adversarial schedule: the concrete sim::SchedulePolicy the
/// check subsystem explores schedule space with.
///
/// Seed semantics: seed 0 is the identity schedule (the engine's stable-key
/// tie-break, zero jitter) — the engine's native order, usable as the
/// baseline leg of a differential trial. Any other seed permutes
/// same-timestamp pop order via a stateless hash of the event key and, when
/// `delay_bound` is positive, adds an independent uniform wire delay in
/// [0, delay_bound) to every network message, hashed from the engine's
/// counter-stable draw_id. Both streams are pure functions of
/// (seed, identity), so a schedule replays exactly — same seed, same
/// schedule — for any engine partition count, and the policy is safely
/// shared across partition threads (it holds no mutable state).
#pragma once

#include <cstdint>

#include "sim/schedule.hpp"

namespace psi::check {

class AdversarialSchedule final : public sim::SchedulePolicy {
 public:
  explicit AdversarialSchedule(std::uint64_t seed,
                               sim::SimTime delay_bound = 0.0);

  std::uint64_t seed() const { return seed_; }
  sim::SimTime delay_bound() const { return delay_bound_; }

  std::uint64_t tie_priority(std::uint64_t key) override;
  sim::SimTime network_delay(int src, int dst, std::int64_t tag, Count bytes,
                             int comm_class, sim::SimTime post,
                             std::uint64_t draw_id) override;

 private:
  std::uint64_t seed_;
  sim::SimTime delay_bound_;
};

}  // namespace psi::check
