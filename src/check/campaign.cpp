#include "check/campaign.hpp"

#include <algorithm>
#include <cstdio>

#include "check/repro.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/record.hpp"
#include "pselinv/plan.hpp"

namespace psi::check {

namespace {

/// Uniform in [0, 1) from a stateless hash of (seed, trial, salt) — same
/// construction as fault::DeterministicInjector's draws.
double uniform_from(std::uint64_t seed, std::uint64_t trial,
                    std::uint64_t salt) {
  std::uint64_t state = hash_combine(hash_combine(seed, trial), salt);
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

std::uint64_t draw_u64(std::uint64_t seed, std::uint64_t trial,
                       std::uint64_t salt) {
  std::uint64_t state = hash_combine(hash_combine(seed, trial), salt);
  return splitmix64(state);
}

}  // namespace

CaseSpec trial_spec(std::uint64_t seed, int index, bool plant_bug) {
  const std::uint64_t t = static_cast<std::uint64_t>(index);
  CaseSpec spec;
  spec.matrix_seed = draw_u64(seed, t, 0x01);
  if (spec.matrix_seed == 0) spec.matrix_seed = 1;
  spec.n = static_cast<Int>(24 + draw_u64(seed, t, 0x02) % 48);
  spec.degree = 2.5 + 2.0 * uniform_from(seed, t, 0x03);
  spec.unsymmetric = uniform_from(seed, t, 0x04) < 0.25;
  spec.grid_rows = static_cast<int>(2 + draw_u64(seed, t, 0x05) % 3);
  spec.grid_cols = static_cast<int>(2 + draw_u64(seed, t, 0x06) % 3);
  spec.fault_seed = draw_u64(seed, t, 0x07);
  const int rules = static_cast<int>(1 + draw_u64(seed, t, 0x08) % 3);
  for (int r = 0; r < rules; ++r) {
    const std::uint64_t salt = 0x10 + static_cast<std::uint64_t>(r) * 8;
    FaultRuleSpec rule;
    rule.drop_prob = 0.03 * uniform_from(seed, t, salt);
    rule.dup_prob = 0.03 * uniform_from(seed, t, salt + 1);
    rule.delay_prob = 0.2 * uniform_from(seed, t, salt + 2);
    rule.delay = 100e-6 * uniform_from(seed, t, salt + 3);
    // Mostly any-class; sometimes target one data class (never acks alone —
    // an ack-only rule is legal but explores less).
    if (uniform_from(seed, t, salt + 4) < 0.25)
      rule.comm_class = static_cast<int>(draw_u64(seed, t, salt + 5) %
                                         pselinv::kProtoAck);
    spec.fault_rules.push_back(rule);
  }
  spec.schedule_seed = draw_u64(seed, t, 0x09);
  spec.schedules = static_cast<int>(2 + draw_u64(seed, t, 0x0a) % 2);
  spec.delay_bound = 200e-6 * uniform_from(seed, t, 0x0b);
  spec.plant_bug = plant_bug;
  return spec;
}

CampaignResult run_campaign(const CampaignOptions& options,
                            std::ostream* ndjson,
                            obs::MetricsRegistry* metrics) {
  PSI_CHECK_MSG(options.trials >= 1, "campaign: need >= 1 trial");
  CampaignResult campaign;
  const WallTimer campaign_timer;
  for (int i = 0; i < options.trials; ++i) {
    if (options.time_budget_seconds > 0.0 &&
        campaign_timer.seconds() >= options.time_budget_seconds)
      break;
    const CaseSpec spec = trial_spec(options.seed, i, options.plant_bug);
    const WallTimer trial_timer;
    const CaseResult result = run_case(spec);
    const double trial_seconds = trial_timer.seconds();
    campaign.trials_run += 1;
    campaign.total_events += result.events;
    campaign.max_ref_err = std::max(campaign.max_ref_err, result.max_ref_err);

    std::string repro_path;
    if (!result.passed) {
      campaign.failures += 1;
      if (campaign.first_failure_trial < 0) {
        campaign.first_failure_trial = i;
        campaign.first_failure_signature = result.signature;
      }
      if (!options.repro_dir.empty()) {
        Repro repro;
        repro.spec = spec;
        repro.signature = result.signature;
        if (options.shrink_failures) {
          const ShrinkResult shrunk =
              shrink(spec, result.signature, options.shrink_attempts);
          repro.spec = shrunk.spec;
          repro.signature = shrunk.signature;
        }
        repro_path = options.repro_dir + "/trial" + std::to_string(i) +
                     ".repro";
        write_repro_file(repro_path, repro);
        if (campaign.first_repro_path.empty())
          campaign.first_repro_path = repro_path;
      }
    }

    if (ndjson != nullptr) {
      // Shared flat-record emitter (same rendering as the bench CSV/NDJSON
      // exports and the psi_serve access log). `repro` is only present on
      // failing trials, so it rides outside the fixed column set.
      obs::Record record;
      record.add("trial", i)
          .add("matrix_seed", spec.matrix_seed)
          .add("n", spec.n)
          .add("degree", spec.degree)
          .add("grid", std::to_string(spec.grid_rows) + "x" +
                           std::to_string(spec.grid_cols))
          .add("unsymmetric", spec.unsymmetric)
          .add("rules", static_cast<long long>(spec.fault_rules.size()))
          .add("schedules", spec.schedules)
          .add("delay_bound", spec.delay_bound)
          .add("passed", result.passed)
          .add("signature", result.signature)
          .add("legs", static_cast<long long>(result.legs_run))
          .add("numeric_parallel_legs",
               static_cast<long long>(result.numeric_parallel_legs))
          .add("sim_partition_legs",
               static_cast<long long>(result.sim_partition_legs))
          .add("nsym_legs", static_cast<long long>(result.nsym_legs))
          .add("events", static_cast<long long>(result.events))
          .add("max_ref_err", result.max_ref_err)
          .add("drops", static_cast<long long>(result.injected_drops))
          .add("duplicates",
               static_cast<long long>(result.injected_duplicates))
          .add("arena_high_water",
               static_cast<long long>(result.arena_high_water))
          .add("wall_seconds", trial_seconds);
      if (!repro_path.empty()) record.add("repro", repro_path);
      *ndjson << record.to_json() << '\n';
    }

    if (metrics != nullptr) {
      metrics->counter("check.trials").add(1);
      metrics->counter(result.passed ? "check.trials_passed"
                                     : "check.trials_failed")
          .add(1);
      metrics->counter("check.legs").add(static_cast<Count>(result.legs_run));
      metrics->counter("check.numeric_parallel_legs")
          .add(static_cast<Count>(result.numeric_parallel_legs));
      metrics->counter("check.sim_partition_legs")
          .add(static_cast<Count>(result.sim_partition_legs));
      metrics->counter("check.nsym_legs")
          .add(static_cast<Count>(result.nsym_legs));
      metrics->counter("check.events").add(result.events);
      metrics->counter("check.injected_drops").add(result.injected_drops);
      metrics->counter("check.injected_duplicates")
          .add(result.injected_duplicates);
      metrics->gauge("check.max_ref_err").set(campaign.max_ref_err);
      metrics
          ->histogram("check.trial_seconds", obs::Labels(),
                      {0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0})
          .observe(trial_seconds);
    }

    if (!result.passed && options.stop_on_failure) break;
  }
  campaign.wall_seconds = campaign_timer.seconds();
  return campaign;
}

}  // namespace psi::check
