#include "check/schedule.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

namespace psi::check {

AdversarialSchedule::AdversarialSchedule(std::uint64_t seed,
                                         sim::SimTime delay_bound)
    : seed_(seed), delay_bound_(delay_bound) {
  PSI_CHECK_MSG(delay_bound >= 0.0, "delay_bound must be non-negative");
}

std::uint64_t AdversarialSchedule::tie_priority(std::uint64_t seq) {
  if (seed_ == 0) return seq;
  std::uint64_t state = seed_ ^ (seq * 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

sim::SimTime AdversarialSchedule::network_delay(int src, int dst,
                                                std::int64_t tag, Count bytes,
                                                int comm_class,
                                                sim::SimTime post) {
  (void)src;
  (void)dst;
  (void)tag;
  (void)bytes;
  (void)comm_class;
  (void)post;
  if (seed_ == 0 || delay_bound_ <= 0.0) return 0.0;
  // The draw depends only on (seed, stream position): the engine consults
  // the policy in its deterministic send order, so the jitter sequence is a
  // pure function of the seed, independent of wall clock or host.
  std::uint64_t state =
      hash_combine(hash_combine(seed_, std::uint64_t{0xde1a}), delay_draws_++);
  const double u = static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
  return delay_bound_ * u;
}

}  // namespace psi::check
