#include "check/schedule.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

namespace psi::check {

AdversarialSchedule::AdversarialSchedule(std::uint64_t seed,
                                         sim::SimTime delay_bound)
    : seed_(seed), delay_bound_(delay_bound) {
  PSI_CHECK_MSG(delay_bound >= 0.0, "delay_bound must be non-negative");
}

std::uint64_t AdversarialSchedule::tie_priority(std::uint64_t key) {
  if (seed_ == 0) return key;
  std::uint64_t state = seed_ ^ (key * 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

sim::SimTime AdversarialSchedule::network_delay(int src, int dst,
                                                std::int64_t tag, Count bytes,
                                                int comm_class,
                                                sim::SimTime post,
                                                std::uint64_t draw_id) {
  (void)src;
  (void)dst;
  (void)tag;
  (void)bytes;
  (void)comm_class;
  (void)post;
  if (seed_ == 0 || delay_bound_ <= 0.0) return 0.0;
  // The draw depends only on (seed, draw_id): the engine's draw_id is a
  // pure function of the sender's causal history, so the jitter a message
  // sees is identical across runs, hosts, and engine partition counts.
  std::uint64_t state =
      hash_combine(hash_combine(seed_, std::uint64_t{0xde1a}), draw_id);
  const double u = static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
  return delay_bound_ * u;
}

}  // namespace psi::check
