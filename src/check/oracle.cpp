#include "check/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "check/schedule.hpp"
#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "driver/experiment.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "nsym/engine.hpp"
#include "nsym/selinv.hpp"
#include "nsym/structure.hpp"
#include "numeric/selinv.hpp"
#include "numeric/supernodal_lu.hpp"
#include "pselinv/engine.hpp"
#include "sparse/dense.hpp"
#include "sparse/generators.hpp"
#include "symbolic/analysis.hpp"
#include "trees/comm_tree.hpp"
#include "trees/protocol.hpp"

namespace psi::check {

namespace {

/// Tolerance of every leg against the sequential selected inversion. The
/// generated matrices are diagonally dominant, so anything past this is a
/// logic bug, not conditioning.
constexpr double kRefTolerance = 1e-8;

/// Sanity envelope for the event-arena high water beyond the processed
/// event count (cancelled retry timers pop without being dispatched).
constexpr std::size_t kArenaSlack = 65536;

/// RAII guard for the planted ReduceState arrival-order bug (test hook).
class PlantGuard {
 public:
  explicit PlantGuard(bool enable)
      : prev_(trees::ReduceState::test_fold_in_arrival_order()) {
    trees::ReduceState::test_set_fold_in_arrival_order(enable);
  }
  ~PlantGuard() { trees::ReduceState::test_set_fold_in_arrival_order(prev_); }
  PlantGuard(const PlantGuard&) = delete;
  PlantGuard& operator=(const PlantGuard&) = delete;

 private:
  bool prev_;
};

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

sim::Machine oracle_machine() {
  sim::MachineConfig config;
  config.cores_per_node = 4;
  config.nodes_per_group = 4;
  return sim::Machine(config);
}

fault::FaultPlan fault_plan_from(const CaseSpec& spec) {
  fault::FaultPlan plan(spec.fault_seed);
  for (const FaultRuleSpec& rule : spec.fault_rules) {
    fault::MessageFaultRule r;
    r.drop_prob = rule.drop_prob;
    r.dup_prob = rule.dup_prob;
    r.delay_prob = rule.delay_prob;
    r.delay = rule.delay;
    r.comm_class = rule.comm_class;
    plan.add_rule(r);
  }
  return plan;
}

/// Adversarial seed of leg `i` (i >= 1); never 0 (0 is the identity).
std::uint64_t leg_seed(std::uint64_t schedule_seed, int i) {
  std::uint64_t state =
      hash_combine(schedule_seed, static_cast<std::uint64_t>(i));
  const std::uint64_t s = splitmix64(state);
  return s == 0 ? 1 : s;
}

struct BlockDiff {
  bool differs = false;
  Int row = -1;
  Int col = -1;
  double lhs = 0.0;
  double rhs = 0.0;
};

/// First bitwise-differing selected block between two gathered inverses,
/// scanned in deterministic (supernode, struct entry) order.
BlockDiff first_bitwise_diff(const BlockMatrix& a, const BlockMatrix& b,
                             const BlockStructure& bs) {
  BlockDiff diff;
  const auto check = [&](Int row, Int col) {
    if (diff.differs) return;
    const DenseMatrix& lhs = a.block(row, col);
    const DenseMatrix& rhs = b.block(row, col);
    PSI_CHECK(lhs.rows() == rhs.rows() && lhs.cols() == rhs.cols());
    const std::size_t bytes = static_cast<std::size_t>(lhs.rows()) *
                              static_cast<std::size_t>(lhs.cols()) *
                              sizeof(double);
    if (std::memcmp(lhs.data(), rhs.data(), bytes) == 0) return;
    diff.differs = true;
    diff.row = row;
    diff.col = col;
    for (Int c = 0; c < lhs.cols(); ++c)
      for (Int r = 0; r < lhs.rows(); ++r) {
        const double l = lhs(r, c);
        const double h = rhs(r, c);
        if (std::memcmp(&l, &h, sizeof(double)) != 0) {
          diff.lhs = l;
          diff.rhs = h;
          return;
        }
      }
  };
  for (Int k = 0; k < bs.supernode_count() && !diff.differs; ++k) {
    check(k, k);
    for (Int i : bs.struct_of[static_cast<std::size_t>(k)]) {
      check(i, k);
      check(k, i);
    }
  }
  return diff;
}

/// Worst entry gap against the sequential reference over the diagonal and
/// lower selected blocks (the sequential inversion does not materialize the
/// upper mirror; the distributed legs compare those bitwise among
/// themselves).
double max_ref_gap(const BlockMatrix& got, const BlockMatrix& ref,
                   const BlockStructure& bs) {
  double gap = 0.0;
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    gap = std::max(gap, max_abs_diff(got.block(k, k), ref.block(k, k)));
    for (Int i : bs.struct_of[static_cast<std::size_t>(k)])
      gap = std::max(gap, max_abs_diff(got.block(i, k), ref.block(i, k)));
  }
  return gap;
}

struct VolumeTotals {
  Count sent = 0;
  Count received = 0;
};

VolumeTotals sum_volume(const pselinv::RunResult& result) {
  VolumeTotals totals;
  for (const sim::RankStats& rank : result.rank_stats)
    for (const sim::ClassCounters& counters : rank.per_class) {
      totals.sent += counters.bytes_sent;
      totals.received += counters.bytes_received;
    }
  return totals;
}

}  // namespace

std::string signature_kind(const std::string& signature) {
  const std::size_t space = signature.find(' ');
  return space == std::string::npos ? signature : signature.substr(0, space);
}

CaseResult run_case(const CaseSpec& spec) {
  PSI_CHECK_MSG(spec.n >= 2, "run_case: n must be >= 2");
  PSI_CHECK_MSG(spec.grid_rows >= 1 && spec.grid_cols >= 1,
                "run_case: empty process grid");
  PSI_CHECK_MSG(spec.schedules >= 1, "run_case: need >= 1 schedule leg");

  CaseResult result;
  const PlantGuard plant(spec.plant_bug);

  const ValueKind values =
      spec.unsymmetric ? ValueKind::kUnsymmetric : ValueKind::kSymmetric;
  const GeneratedMatrix gen =
      random_symmetric(spec.n, spec.degree, spec.matrix_seed, values);

  AnalysisOptions opt;
  opt.ordering.method = OrderingMethod::kMinDegree;
  std::uint64_t size_state = hash_combine(spec.matrix_seed, 0xA11A);
  opt.supernodes.max_size = static_cast<Int>(4 + splitmix64(size_state) % 8);
  const SymbolicAnalysis an = analyze(gen, opt);

  // Sequential ground truth (arrival order is irrelevant sequentially).
  SupernodalLU lu_seq = SupernodalLU::factor(an);
  const BlockMatrix reference = selected_inversion(lu_seq);

  const auto fail = [&result](std::string signature) {
    result.passed = false;
    result.signature = std::move(signature);
    return result;
  };

  // Task-parallel numeric legs: the same problem through the shared-memory
  // task graphs, required to match the sequential reference BITWISE. The
  // second leg scrambles ready-queue priorities with a spec-derived seed —
  // the shared-memory twin of the adversarial schedule legs below.
  {
    std::uint64_t tie_state = hash_combine(spec.schedule_seed, 0x9a7a11e1);
    const std::uint64_t scrambled = splitmix64(tie_state);
    const struct {
      int threads;
      std::uint64_t tie_seed;
    } numeric_legs[] = {{2, 0}, {4, scrambled == 0 ? 1 : scrambled}};
    for (const auto& leg : numeric_legs) {
      parallel::ThreadPool pool(leg.threads - 1);
      numeric::ParallelOptions popt;
      popt.threads = leg.threads;
      popt.pool = &pool;
      popt.tie_break_seed = leg.tie_seed;
      SupernodalLU lu_par = SupernodalLU::factor_parallel(an, popt);
      const BlockMatrix parallel_ainv = selinv_parallel(lu_par, popt);
      result.numeric_parallel_legs += 1;
      const BlockDiff diff =
          first_bitwise_diff(reference, parallel_ainv, an.blocks);
      if (diff.differs)
        return fail(std::string("numeric-parallel-mismatch threads=") +
                    std::to_string(leg.threads) +
                    " tie_seed=" + std::to_string(leg.tie_seed) +
                    " block=" + std::to_string(diff.row) + "," +
                    std::to_string(diff.col) +
                    " reference=" + format_double(diff.lhs) +
                    " got=" + format_double(diff.rhs));
    }
  }

  const sim::Machine machine = oracle_machine();
  const dist::ProcessGrid grid(spec.grid_rows, spec.grid_cols);
  const fault::FaultPlan fault_plan = fault_plan_from(spec);
  const pselinv::ValueSymmetry symmetry =
      spec.unsymmetric ? pselinv::ValueSymmetry::kUnsymmetric
                       : pselinv::ValueSymmetry::kSymmetric;

  const trees::TreeScheme kSchemes[] = {trees::TreeScheme::kFlat,
                                        trees::TreeScheme::kShiftedBinary,
                                        trees::TreeScheme::kBinomial};
  for (const trees::TreeScheme scheme : kSchemes) {
    const char* scheme_tag = trees::scheme_name(scheme);
    const pselinv::Plan plan(an.blocks, grid, driver::tree_options_for(scheme),
                             symmetry);

    // One leg of the differential: returns the violated-invariant signature
    // ("" when clean) and hands the gathered inverse back via `out`.
    const auto run_leg = [&](const char* leg_tag, bool resilient,
                             bool faulted, std::uint64_t sched_seed,
                             std::unique_ptr<BlockMatrix>* out,
                             int partitions = 1,
                             sim::SimTime* makespan_out =
                                 nullptr) -> std::string {
      SupernodalLU lu = SupernodalLU::factor(an);
      pselinv::RunOptions options;
      options.resilience.enabled = resilient;
      options.partitions = partitions;
      fault::DeterministicInjector injector(fault_plan);
      if (faulted) options.injector = &injector;
      AdversarialSchedule schedule(sched_seed, spec.delay_bound);
      if (sched_seed != 0) options.schedule = &schedule;
      pselinv::RunResult run =
          run_pselinv(plan, machine, pselinv::ExecutionMode::kNumeric, &lu,
                      nullptr, nullptr, options);
      result.legs_run += 1;
      if (partitions > 1) result.sim_partition_legs += 1;
      result.events += run.events;
      if (makespan_out != nullptr) *makespan_out = run.makespan;
      result.arena_high_water =
          std::max(result.arena_high_water, run.arena_high_water);
      const auto tag = [&](const char* kind) {
        std::string s(kind);
        s += " scheme=";
        s += scheme_tag;
        s += " leg=";
        s += leg_tag;
        return s;
      };
      if (!run.complete())
        return tag("invariant:incomplete") +
               " finalized=" + std::to_string(run.blocks_finalized) +
               " expected=" + std::to_string(run.expected_blocks);
      if (run.channel_inflight != 0)
        return tag("invariant:inflight") +
               " inflight=" + std::to_string(run.channel_inflight);
      if (run.leaked_timers != 0)
        return tag("invariant:timers") +
               " leaked=" + std::to_string(run.leaked_timers);
      const VolumeTotals volume = sum_volume(run);
      const Count dropped = injector.stats().dropped_bytes;
      const Count duplicated = injector.stats().duplicated_bytes;
      if (faulted) {
        result.injected_drops += injector.stats().dropped;
        result.injected_duplicates += injector.stats().duplicated;
      }
      if (volume.received != volume.sent - dropped + duplicated)
        return tag("invariant:volume") + " sent=" +
               std::to_string(volume.sent) +
               " received=" + std::to_string(volume.received) +
               " dropped=" + std::to_string(dropped) +
               " duplicated=" + std::to_string(duplicated);
      if (run.arena_high_water < 1 ||
          run.arena_high_water >
              static_cast<std::size_t>(run.events) + kArenaSlack)
        return tag("invariant:arena") +
               " high_water=" + std::to_string(run.arena_high_water) +
               " events=" + std::to_string(run.events);
      PSI_CHECK(run.ainv != nullptr);
      *out = std::move(run.ainv);
      return "";
    };

    // Fast-mode clean leg: tolerance against the sequential reference.
    std::unique_ptr<BlockMatrix> fast;
    sim::SimTime fast_makespan = 0.0;
    if (std::string sig =
            run_leg("fast", /*resilient=*/false, /*faulted=*/false,
                    /*sched_seed=*/0, &fast, /*partitions=*/1,
                    &fast_makespan);
        !sig.empty())
      return fail(std::move(sig));
    const double fast_gap = max_ref_gap(*fast, reference, an.blocks);
    result.max_ref_err = std::max(result.max_ref_err, fast_gap);
    if (fast_gap > kRefTolerance)
      return fail(std::string("ref-mismatch scheme=") + scheme_tag +
                  " leg=fast err=" + format_double(fast_gap));

    // Partitioned-engine twin of the fast leg (shifted-binary only, so a
    // trial pays for exactly two partitioned legs): the partitioned DES must
    // reproduce the sequential leg BITWISE — same gathered inverse, same
    // makespan (DESIGN.md §14).
    if (scheme == trees::TreeScheme::kShiftedBinary) {
      std::unique_ptr<BlockMatrix> fast_p;
      sim::SimTime fast_p_makespan = 0.0;
      if (std::string sig =
              run_leg("fast-p2", /*resilient=*/false, /*faulted=*/false,
                      /*sched_seed=*/0, &fast_p, /*partitions=*/2,
                      &fast_p_makespan);
          !sig.empty())
        return fail(std::move(sig));
      if (fast_p_makespan != fast_makespan)
        return fail(std::string("sim-partition-mismatch scheme=") +
                    scheme_tag + " leg=fast-p2 makespan=" +
                    format_double(fast_p_makespan) +
                    " sequential=" + format_double(fast_makespan));
      const BlockDiff diff = first_bitwise_diff(*fast, *fast_p, an.blocks);
      if (diff.differs)
        return fail(std::string("sim-partition-mismatch scheme=") +
                    scheme_tag + " leg=fast-p2 block=" +
                    std::to_string(diff.row) + "," + std::to_string(diff.col) +
                    " sequential=" + format_double(diff.lhs) +
                    " got=" + format_double(diff.rhs));
    }

    // Resilient legs: faulted baseline plus K adversarial schedules, all
    // required to agree bitwise.
    std::unique_ptr<BlockMatrix> baseline;
    if (std::string sig =
            run_leg("resilient0", /*resilient=*/true, /*faulted=*/true,
                    /*sched_seed=*/0, &baseline);
        !sig.empty())
      return fail(std::move(sig));
    const double base_gap = max_ref_gap(*baseline, reference, an.blocks);
    result.max_ref_err = std::max(result.max_ref_err, base_gap);
    if (base_gap > kRefTolerance)
      return fail(std::string("ref-mismatch scheme=") + scheme_tag +
                  " leg=resilient0 err=" + format_double(base_gap));

    // Second partitioned leg: resilient + faulted + adversarial schedule on
    // four partitions. Resilient-mode accumulation is canonical-order, so
    // its inverse must match the faulted baseline bitwise no matter the
    // schedule or the partitioning.
    if (scheme == trees::TreeScheme::kShiftedBinary) {
      std::unique_ptr<BlockMatrix> adversarial_p;
      if (std::string sig = run_leg(
              "resilient-p4", /*resilient=*/true, /*faulted=*/true,
              leg_seed(spec.schedule_seed, 1), &adversarial_p,
              /*partitions=*/4);
          !sig.empty())
        return fail(std::move(sig));
      const BlockDiff diff =
          first_bitwise_diff(*baseline, *adversarial_p, an.blocks);
      if (diff.differs)
        return fail(std::string("sim-partition-mismatch scheme=") +
                    scheme_tag + " leg=resilient-p4 block=" +
                    std::to_string(diff.row) + "," + std::to_string(diff.col) +
                    " baseline=" + format_double(diff.lhs) +
                    " got=" + format_double(diff.rhs));
    }

    for (int i = 1; i <= spec.schedules; ++i) {
      const std::string leg_tag = "resilient" + std::to_string(i);
      std::unique_ptr<BlockMatrix> adversarial;
      if (std::string sig = run_leg(leg_tag.c_str(), /*resilient=*/true,
                                    /*faulted=*/true,
                                    leg_seed(spec.schedule_seed, i),
                                    &adversarial);
          !sig.empty())
        return fail(std::move(sig));
      const BlockDiff diff =
          first_bitwise_diff(*baseline, *adversarial, an.blocks);
      if (diff.differs)
        return fail(std::string("bitwise-mismatch scheme=") + scheme_tag +
                    " leg=" + leg_tag + " block=" + std::to_string(diff.row) +
                    "," + std::to_string(diff.col) +
                    " baseline=" + format_double(diff.lhs) +
                    " got=" + format_double(diff.rhs));
    }
  }

  // Non-symmetric differential: a directed companion problem through
  // psi::nsym under the same fault plan and schedule family. Tiny supernodes
  // keep the scalar one-directional drops visible at block granularity, so
  // the restricted recurrences (and their placeholder/zero-block paths) are
  // genuinely exercised rather than collapsing to the symmetric case.
  {
    std::uint64_t nsym_state = hash_combine(spec.matrix_seed, 0x5135);
    const GeneratedMatrix ngen = random_nonsym(
        spec.n, spec.degree, splitmix64(nsym_state), /*drop_prob=*/0.5);
    AnalysisOptions nopt;
    nopt.ordering.method = OrderingMethod::kMinDegree;
    nopt.supernodes.max_size = 2;
    const nsym::NsymAnalysis nan = nsym::analyze_nsym(ngen, nopt);
    const BlockStructure& nbs = nan.sym.blocks;

    // Sequential restricted sweep, checked against the dense inverse on the
    // union pattern (the one oracle here that does not depend on any psi
    // code path shared with the legs under test).
    nsym::NsymSupernodalLU nlu_seq = nsym::NsymSupernodalLU::factor(nan);
    const BlockMatrix nref = nsym::nsym_selected_inversion(nlu_seq);
    {
      DenseMatrix dense(nan.matrix.n(), nan.matrix.n());
      for (Int j = 0; j < nan.matrix.n(); ++j)
        for (Int p = nan.matrix.pattern.col_ptr[static_cast<std::size_t>(j)];
             p < nan.matrix.pattern.col_ptr[static_cast<std::size_t>(j) + 1];
             ++p)
          dense(nan.matrix.pattern.row_idx[static_cast<std::size_t>(p)], j) =
              nan.matrix.values[static_cast<std::size_t>(p)];
      const DenseMatrix full_inv = inverse(dense);
      double gap = 0.0;
      const auto check_block = [&](Int i, Int k) {
        const DenseMatrix blk = nref.block(i, k);
        const Int r0 = nbs.part.first_col(i);
        const Int c0 = nbs.part.first_col(k);
        for (Int c = 0; c < blk.cols(); ++c)
          for (Int r = 0; r < blk.rows(); ++r)
            gap = std::max(gap,
                           std::abs(blk(r, c) - full_inv(r0 + r, c0 + c)));
      };
      for (Int k = 0; k < nbs.supernode_count(); ++k) {
        check_block(k, k);
        for (Int i : nbs.struct_of[static_cast<std::size_t>(k)]) {
          check_block(i, k);
          check_block(k, i);
        }
      }
      result.max_ref_err = std::max(result.max_ref_err, gap);
      if (gap > kRefTolerance)
        return fail(std::string("nsym-dense-mismatch err=") +
                    format_double(gap));
    }

    // Worst entry gap against the sequential restricted sweep, both
    // triangles of the union structure (nsym materializes both sides).
    const auto nsym_ref_gap = [&](const BlockMatrix& got) {
      double gap = 0.0;
      for (Int k = 0; k < nbs.supernode_count(); ++k) {
        gap = std::max(gap, max_abs_diff(got.block(k, k), nref.block(k, k)));
        for (Int i : nbs.struct_of[static_cast<std::size_t>(k)]) {
          gap = std::max(gap, max_abs_diff(got.block(i, k), nref.block(i, k)));
          gap = std::max(gap, max_abs_diff(got.block(k, i), nref.block(k, i)));
        }
      }
      return gap;
    };

    // Task-parallel nsym leg with an adversarial tie-break seed, required
    // to match the sequential sweep BITWISE.
    {
      parallel::ThreadPool pool(2);
      numeric::ParallelOptions popt;
      popt.threads = 3;
      popt.pool = &pool;
      popt.tie_break_seed = leg_seed(spec.schedule_seed, 17);
      nsym::NsymSupernodalLU nlu_par =
          nsym::NsymSupernodalLU::factor_parallel(nan, popt);
      const BlockMatrix npar = nsym::nsym_selinv_parallel(nlu_par, popt);
      result.nsym_legs += 1;
      const BlockDiff diff = first_bitwise_diff(nref, npar, nbs);
      if (diff.differs)
        return fail(std::string("nsym-numeric-parallel-mismatch block=") +
                    std::to_string(diff.row) + "," + std::to_string(diff.col) +
                    " reference=" + format_double(diff.lhs) +
                    " got=" + format_double(diff.rhs));
    }

    // One nsym engine leg: shares the symmetric legs' invariant battery.
    const auto run_nsym_leg =
        [&](trees::TreeScheme scheme, const char* leg_tag, bool resilient,
            bool faulted, std::uint64_t sched_seed,
            std::unique_ptr<BlockMatrix>* out) -> std::string {
      const char* scheme_tag = trees::scheme_name(scheme);
      const nsym::NsymPlan nplan(nbs, nan.structure, grid,
                                 driver::tree_options_for(scheme));
      nsym::NsymSupernodalLU nlu = nsym::NsymSupernodalLU::factor(nan);
      pselinv::RunOptions options;
      options.resilience.enabled = resilient;
      fault::DeterministicInjector injector(fault_plan);
      if (faulted) options.injector = &injector;
      AdversarialSchedule schedule(sched_seed, spec.delay_bound);
      if (sched_seed != 0) options.schedule = &schedule;
      pselinv::RunResult run =
          nsym::run_nsym(nplan, machine, pselinv::ExecutionMode::kNumeric,
                         &nlu, nullptr, nullptr, options);
      result.nsym_legs += 1;
      result.events += run.events;
      result.arena_high_water =
          std::max(result.arena_high_water, run.arena_high_water);
      const auto tag = [&](const char* kind) {
        std::string s("nsym-");
        s += kind;
        s += " scheme=";
        s += scheme_tag;
        s += " leg=";
        s += leg_tag;
        return s;
      };
      if (!run.complete())
        return tag("invariant:incomplete") +
               " finalized=" + std::to_string(run.blocks_finalized) +
               " expected=" + std::to_string(run.expected_blocks);
      if (run.channel_inflight != 0)
        return tag("invariant:inflight") +
               " inflight=" + std::to_string(run.channel_inflight);
      if (run.leaked_timers != 0)
        return tag("invariant:timers") +
               " leaked=" + std::to_string(run.leaked_timers);
      const VolumeTotals volume = sum_volume(run);
      const Count dropped = injector.stats().dropped_bytes;
      const Count duplicated = injector.stats().duplicated_bytes;
      if (faulted) {
        result.injected_drops += injector.stats().dropped;
        result.injected_duplicates += injector.stats().duplicated;
      }
      if (volume.received != volume.sent - dropped + duplicated)
        return tag("invariant:volume") +
               " sent=" + std::to_string(volume.sent) +
               " received=" + std::to_string(volume.received) +
               " dropped=" + std::to_string(dropped) +
               " duplicated=" + std::to_string(duplicated);
      PSI_CHECK(run.ainv != nullptr);
      *out = std::move(run.ainv);
      return "";
    };

    // Fast-mode scheme sweep against the sequential restricted sweep.
    for (const trees::TreeScheme scheme : kSchemes) {
      std::unique_ptr<BlockMatrix> fast;
      if (std::string sig = run_nsym_leg(scheme, "fast", /*resilient=*/false,
                                         /*faulted=*/false, /*sched_seed=*/0,
                                         &fast);
          !sig.empty())
        return fail(std::move(sig));
      const double gap = nsym_ref_gap(*fast);
      result.max_ref_err = std::max(result.max_ref_err, gap);
      if (gap > kRefTolerance)
        return fail(std::string("nsym-ref-mismatch scheme=") +
                    trees::scheme_name(scheme) +
                    " leg=fast err=" + format_double(gap));
    }

    // Resilient faulted baseline plus one adversarially scheduled leg,
    // required to agree BITWISE (shifted-binary keeps the trial's cost to
    // one resilient pair).
    std::unique_ptr<BlockMatrix> baseline;
    if (std::string sig = run_nsym_leg(
            trees::TreeScheme::kShiftedBinary, "resilient0",
            /*resilient=*/true, /*faulted=*/true, /*sched_seed=*/0, &baseline);
        !sig.empty())
      return fail(std::move(sig));
    const double base_gap = nsym_ref_gap(*baseline);
    result.max_ref_err = std::max(result.max_ref_err, base_gap);
    if (base_gap > kRefTolerance)
      return fail(std::string("nsym-ref-mismatch scheme=shifted-binary") +
                  " leg=resilient0 err=" + format_double(base_gap));
    std::unique_ptr<BlockMatrix> adversarial;
    if (std::string sig = run_nsym_leg(
            trees::TreeScheme::kShiftedBinary, "resilient1",
            /*resilient=*/true, /*faulted=*/true,
            leg_seed(spec.schedule_seed, 23), &adversarial);
        !sig.empty())
      return fail(std::move(sig));
    const BlockDiff diff = first_bitwise_diff(*baseline, *adversarial, nbs);
    if (diff.differs)
      return fail(std::string("nsym-bitwise-mismatch scheme=shifted-binary") +
                  " leg=resilient1 block=" + std::to_string(diff.row) + "," +
                  std::to_string(diff.col) +
                  " baseline=" + format_double(diff.lhs) +
                  " got=" + format_double(diff.rhs));
  }

  result.passed = true;
  return result;
}

}  // namespace psi::check
