#include "check/shrink.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace psi::check {

namespace {

/// Smallest matrix the oracle stays meaningful on: enough rows for several
/// supernodes and a populated elimination structure on a 2x2 grid.
constexpr Int kMinRows = 12;
constexpr double kMinDegree = 2.0;

/// Ascending candidate values strictly below `current`, floored at `lo`:
/// the floor itself first (the biggest possible shrink), then a ladder of
/// quartile points walking back up, ending at current-1 — so even when only
/// single steps keep the failure alive, round-over-round greedy descent
/// still reaches the true minimum (the fixpoint loop re-runs the ladder).
template <typename T>
std::vector<T> descent_candidates(T current, T lo) {
  std::vector<T> out;
  if (current <= lo) return out;
  const T span = static_cast<T>(current - lo);
  const T steps[] = {lo,
                     static_cast<T>(lo + span / 4),
                     static_cast<T>(lo + span / 2),
                     static_cast<T>(lo + (3 * span) / 4),
                     static_cast<T>(current - 2),
                     static_cast<T>(current - 1)};
  for (T v : steps)
    if (v >= lo && v < current && (out.empty() || v > out.back()))
      out.push_back(v);
  return out;
}

}  // namespace

ShrinkResult shrink(const CaseSpec& failing, const std::string& signature,
                    int max_attempts) {
  PSI_CHECK_MSG(!signature.empty(), "shrink: input spec did not fail");
  ShrinkResult result;
  result.spec = failing;
  result.signature = signature;
  const std::string kind = signature_kind(signature);

  // Tries `candidate`; adopts it when it still fails with the same kind.
  const auto attempt = [&](const CaseSpec& candidate) -> bool {
    if (result.attempts >= max_attempts) return false;
    result.attempts += 1;
    const CaseResult outcome = run_case(candidate);
    if (outcome.passed || signature_kind(outcome.signature) != kind)
      return false;
    result.spec = candidate;
    result.signature = outcome.signature;
    result.accepted += 1;
    return true;
  };

  bool progressed = true;
  while (progressed && result.attempts < max_attempts) {
    progressed = false;
    CaseSpec& spec = result.spec;

    // Matrix size: the dominant cost, so shrink it first, biggest cut
    // first. A smaller n regenerates a different matrix, so the exact
    // rounding coincidence a bitwise failure hinges on may not survive the
    // size change with the original seeds — re-draw a few sibling
    // matrix/schedule seeds at each candidate size (deterministically, from
    // the original seed) before giving up on that size; the kind check in
    // attempt() keeps this honest.
    for (Int n : descent_candidates<Int>(spec.n, kMinRows)) {
      bool accepted = false;
      for (std::uint64_t j = 0; j < 10 && !accepted; ++j) {
        CaseSpec candidate = spec;
        candidate.n = n;
        if (j > 0) {
          std::uint64_t state = hash_combine(
              hash_combine(failing.matrix_seed, static_cast<std::uint64_t>(n)),
              j);
          candidate.matrix_seed = splitmix64(state);
          if (candidate.matrix_seed == 0) candidate.matrix_seed = 1;
          candidate.schedule_seed = splitmix64(state);
        }
        accepted = attempt(candidate);
      }
      if (accepted) {
        progressed = true;
        break;
      }
    }

    // Connectivity.
    if (spec.degree > kMinDegree) {
      CaseSpec candidate = spec;
      candidate.degree =
          std::max(kMinDegree, (spec.degree + kMinDegree) / 2.0);
      if (candidate.degree < spec.degree && attempt(candidate))
        progressed = true;
    }

    // Fault rules, one at a time (order: drop the last rule first so the
    // surviving indices stay stable in the repro).
    for (std::size_t i = spec.fault_rules.size(); i-- > 0;) {
      CaseSpec candidate = spec;
      candidate.fault_rules.erase(
          candidate.fault_rules.begin() + static_cast<std::ptrdiff_t>(i));
      if (attempt(candidate)) {
        progressed = true;
        break;
      }
    }

    // Process grid: both dimensions at once, then each alone.
    if (spec.grid_rows > 2 || spec.grid_cols > 2) {
      CaseSpec candidate = spec;
      candidate.grid_rows = std::min(spec.grid_rows, 2);
      candidate.grid_cols = std::min(spec.grid_cols, 2);
      if (attempt(candidate)) {
        progressed = true;
      } else {
        if (spec.grid_rows > 2) {
          candidate = spec;
          candidate.grid_rows = spec.grid_rows - 1;
          if (attempt(candidate)) progressed = true;
        }
        if (!progressed && spec.grid_cols > 2) {
          candidate = spec;
          candidate.grid_cols = spec.grid_cols - 1;
          if (attempt(candidate)) progressed = true;
        }
      }
    }

    // Schedule legs (floored at 2: a single adversarial leg has much
    // weaker mismatch-detection power, which would starve the other
    // shrink dimensions of acceptable candidates).
    for (int k : descent_candidates<int>(spec.schedules, 2)) {
      CaseSpec candidate = spec;
      candidate.schedules = k;
      if (attempt(candidate)) {
        progressed = true;
        break;
      }
    }

    // Value symmetry: the symmetric algorithm is the smaller machine.
    if (spec.unsymmetric) {
      CaseSpec candidate = spec;
      candidate.unsymmetric = false;
      if (attempt(candidate)) progressed = true;
    }
  }

  // Adversarial jitter last: shrinking the delay bound mid-descent would
  // sap the very arrival-order perturbation that keeps an order-dependence
  // failure reproducing, starving the structural dimensions above. Once the
  // structure is minimal, try zero, then halvings.
  while (result.spec.delay_bound > 0.0 && result.attempts < max_attempts) {
    CaseSpec candidate = result.spec;
    candidate.delay_bound = 0.0;
    if (attempt(candidate)) continue;
    candidate.delay_bound = result.spec.delay_bound / 2.0;
    if (!attempt(candidate)) break;
  }
  return result;
}

}  // namespace psi::check
