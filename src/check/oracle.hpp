/// \file oracle.hpp
/// \brief Differential oracle: one generated problem, many executions.
///
/// A trial (CaseSpec) fixes a random matrix, a process grid, a fault plan,
/// and a family of adversarial schedules. run_case() executes the problem
/// through all three paper tree schemes (flat, shifted-binary, binomial),
/// each as:
///   * a fast-mode clean leg (no faults, native FIFO schedule) checked
///     against the sequential selected inversion with a tight tolerance
///     (fast mode folds in arrival order, so bitwise equality across
///     schedules is mathematically unobtainable there); and
///   * a resilient-mode baseline leg plus K adversarially scheduled legs,
///     all under the same injected fault sequence, asserted BITWISE
///     identical to each other (the resilient protocol's canonical fold
///     makes the numbers schedule- and fault-independent).
/// Before the scheme legs, the trial also runs task-parallel numeric legs —
/// factor_parallel + selinv_parallel at deterministic thread counts, one
/// with an adversarial ready-queue tie_break_seed — asserted BITWISE equal
/// to the sequential reference (the shared-memory analogue of the resilient
/// fold: canonical-order reductions make results schedule-independent).
/// Every leg additionally must satisfy the protocol-exhaustion invariants:
/// run completeness, zero channel inflight, zero leaked timers, byte-exact
/// volume conservation (received == sent - dropped + duplicated bytes), and
/// an event-arena high water inside a sane envelope.
///
/// After the symmetric legs, the trial derives a structurally NON-symmetric
/// companion problem (random_nonsym over the same n/degree, small supernodes
/// so the directed drops survive at block granularity) and pushes it through
/// psi::nsym: the sequential restricted sweep is checked against the dense
/// inverse on the union pattern, a task-parallel nsym leg must match it
/// bitwise, each tree scheme's fast engine leg must match it to tolerance,
/// and a resilient faulted baseline plus one adversarially scheduled leg
/// must agree bitwise — all under the trial's fault plan and invariants.
///
/// Failures come back as a deterministic one-line signature — a pure
/// function of the spec — so a shrunk repro replays to the byte-identical
/// signature on any host.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.hpp"
#include "sparse/types.hpp"

namespace psi::check {

/// One probabilistic message-fault rule of a trial (mirrors
/// fault::MessageFaultRule, restricted to the fields the campaign explores
/// and the repro format serializes).
struct FaultRuleSpec {
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  double delay_prob = 0.0;
  double delay = 0.0;    ///< seconds added when the delay fires
  int comm_class = -1;   ///< -1: any class
};

/// Complete, self-contained description of one differential trial. Every
/// execution detail derives deterministically from these fields, so a spec
/// IS a repro.
struct CaseSpec {
  std::uint64_t matrix_seed = 1;
  Int n = 32;               ///< matrix dimension
  double degree = 3.0;      ///< average off-diagonals per row
  bool unsymmetric = false; ///< unsymmetric values over the symmetric pattern
  int grid_rows = 2;
  int grid_cols = 2;
  std::uint64_t fault_seed = 0xfa17;
  std::vector<FaultRuleSpec> fault_rules;
  std::uint64_t schedule_seed = 1;  ///< base seed of the adversarial family
  int schedules = 3;                ///< K adversarial legs per scheme
  double delay_bound = 0.0;         ///< adversarial jitter bound (seconds)
  bool plant_bug = false;  ///< enable the arrival-order ReduceState bug
};

struct CaseResult {
  bool passed = false;
  /// Deterministic failure signature ("" when passed). The leading token
  /// names the failure kind (e.g. "bitwise-mismatch", "invariant:inflight");
  /// the shrinker treats two failures with the same kind as the same bug.
  std::string signature;
  std::size_t legs_run = 0;      ///< engine (DES) executions performed
  /// Task-parallel numeric legs executed (factor_parallel + selinv_parallel
  /// runs compared bitwise against the sequential reference).
  std::size_t numeric_parallel_legs = 0;
  /// Partitioned-engine legs executed (sim::Engine::set_partitions > 1 runs
  /// compared bitwise against their sequential twins).
  std::size_t sim_partition_legs = 0;
  /// Non-symmetric legs executed (the psi::nsym differential: a directed
  /// companion problem through the task-parallel sweep, the three-scheme
  /// fast legs against the sequential restricted sweep, and the resilient
  /// baseline + adversarial pair asserted bitwise identical).
  std::size_t nsym_legs = 0;
  double max_ref_err = 0.0;      ///< worst |entry| gap vs sequential selinv
  Count events = 0;              ///< DES events summed over all legs
  Count injected_drops = 0;      ///< summed over faulted legs
  Count injected_duplicates = 0;
  std::size_t arena_high_water = 0;  ///< max over legs
};

/// Failure kind of a signature: the text before the first space.
std::string signature_kind(const std::string& signature);

/// Runs one differential trial. Never throws on an oracle violation — the
/// violation is returned as the signature; throws only on internal misuse.
CaseResult run_case(const CaseSpec& spec);

}  // namespace psi::check
