/// \file psi_check_main.cpp
/// \brief psi_check — seeded fuzz campaigns over the differential oracle,
/// plus byte-exact replay of shrunk repro files.
///
/// Usage:
///   psi_check [--trials N] [--seed S] [--time-budget SECONDS]
///             [--ndjson PATH] [--metrics PATH] [--repro-dir DIR]
///             [--stop-on-failure] [--no-shrink] [--plant-bug]
///   psi_check --replay FILE.repro
///
/// Exit codes: 0 — campaign clean / replay reproduced the recorded
/// signature byte-for-byte; 1 — failures found or replay diverged;
/// 2 — usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "check/campaign.hpp"
#include "check/oracle.hpp"
#include "check/repro.hpp"
#include "obs/metrics.hpp"

namespace {

void usage(std::ostream& out) {
  out << "psi_check: adversarial-schedule differential fuzzing for the\n"
         "parallel selected-inversion engine.\n\n"
         "  psi_check [options]          run a fuzz campaign\n"
         "  psi_check --replay FILE      re-execute a .repro file\n\n"
         "Campaign options:\n"
         "  --trials N          trials to run (default 100)\n"
         "  --seed S            campaign seed (default 1)\n"
         "  --time-budget SEC   stop after SEC seconds of wall time\n"
         "  --ndjson PATH       per-trial NDJSON stats ('-' for stdout)\n"
         "  --metrics PATH      metrics-registry NDJSON dump\n"
         "  --repro-dir DIR     write shrunk trial<N>.repro files into DIR\n"
         "  --stop-on-failure   stop at the first failing trial\n"
         "  --no-shrink         write repros without shrinking\n"
         "  --plant-bug         enable the planted arrival-order bug\n";
}

int replay(const std::string& path) {
  const psi::check::Repro repro = psi::check::read_repro_file(path);
  const psi::check::CaseResult result = psi::check::run_case(repro.spec);
  const std::string got = result.passed ? std::string() : result.signature;
  if (got == repro.signature) {
    std::cout << "replay: reproduced\n  " << repro.signature << "\n";
    return 0;
  }
  std::cout << "replay: DIVERGED\n  recorded: " << repro.signature
            << "\n  got:      " << (got.empty() ? "<passed>" : got) << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) try {
  std::string replay_path;
  psi::check::CampaignOptions options;
  std::string ndjson_path;
  std::string metrics_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "psi_check: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg == "--replay") {
      replay_path = value();
    } else if (arg == "--trials") {
      options.trials = std::atoi(value().c_str());
    } else if (arg == "--seed") {
      options.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--time-budget") {
      options.time_budget_seconds = std::atof(value().c_str());
    } else if (arg == "--ndjson") {
      ndjson_path = value();
    } else if (arg == "--metrics") {
      metrics_path = value();
    } else if (arg == "--repro-dir") {
      options.repro_dir = value();
    } else if (arg == "--stop-on-failure") {
      options.stop_on_failure = true;
    } else if (arg == "--no-shrink") {
      options.shrink_failures = false;
    } else if (arg == "--plant-bug") {
      options.plant_bug = true;
    } else {
      std::cerr << "psi_check: unknown option " << arg << "\n";
      usage(std::cerr);
      return 2;
    }
  }

  if (!replay_path.empty()) return replay(replay_path);

  std::ofstream ndjson_file;
  std::ostream* ndjson = nullptr;
  if (ndjson_path == "-") {
    ndjson = &std::cout;
  } else if (!ndjson_path.empty()) {
    ndjson_file.open(ndjson_path);
    if (!ndjson_file.good()) {
      std::cerr << "psi_check: cannot open " << ndjson_path << "\n";
      return 2;
    }
    ndjson = &ndjson_file;
  }

  psi::obs::MetricsRegistry metrics;
  const psi::check::CampaignResult result = psi::check::run_campaign(
      options, ndjson, metrics_path.empty() ? nullptr : &metrics);
  if (!metrics_path.empty()) metrics.write_ndjson(metrics_path);

  std::printf(
      "campaign seed=%llu trials=%d failures=%d events=%lld "
      "max_ref_err=%.3g wall=%.1fs\n",
      static_cast<unsigned long long>(options.seed), result.trials_run,
      result.failures, static_cast<long long>(result.total_events),
      result.max_ref_err, result.wall_seconds);
  if (result.failures > 0) {
    std::printf("first failure: trial %d\n  %s\n", result.first_failure_trial,
                result.first_failure_signature.c_str());
    if (!result.first_repro_path.empty())
      std::printf("repro: %s\n", result.first_repro_path.c_str());
    return 1;
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "psi_check: " << e.what() << "\n";
  return 2;
}
