/// \file repro.hpp
/// \brief Replayable repro files for failing differential trials.
///
/// A repro is the complete CaseSpec of a failing trial plus the failure
/// signature it produced, serialized as a line-oriented text file
/// ("psi-check-repro v1"). Doubles are written with %.17g so they round-trip
/// bit-exactly; everything else is integral. `psi_check --replay file.repro`
/// re-executes the spec and compares the fresh signature byte-for-byte
/// against the recorded one.
#pragma once

#include <string>

#include "check/oracle.hpp"

namespace psi::check {

struct Repro {
  CaseSpec spec;
  std::string signature;  ///< failure signature the spec must reproduce
};

/// Serializes to the "psi-check-repro v1" text form (newline-terminated).
std::string to_text(const Repro& repro);

/// Parses the text form; throws psi::Error on malformed input. Parsing the
/// output of to_text() reconstructs the Repro exactly (bitwise doubles).
Repro parse_repro(const std::string& text);

void write_repro_file(const std::string& path, const Repro& repro);
Repro read_repro_file(const std::string& path);

}  // namespace psi::check
