/// \file fault_plan.hpp
/// \brief Seeded, fully deterministic fault scenarios.
///
/// A FaultPlan is a declarative description of everything that goes wrong
/// in one run: which ranks straggle (and by how much, when), which node
/// pairs' links degrade, and which message classes are dropped / duplicated
/// / delayed (with what probability, in what time window). The plan itself
/// holds no RNG state — straggler/link selection helpers draw from the seed
/// once at build time, and the message schedule is realized by
/// DeterministicInjector (injector.hpp), which derives every per-message
/// coin flip from (plan seed, message counter). Two runs from the same plan
/// therefore inject byte-identical fault sequences.
///
/// Environment knobs (from_env): PSI_FAULT_SEED, PSI_FAULT_STRAGGLERS,
/// PSI_FAULT_SLOWDOWN, PSI_FAULT_DROP, PSI_FAULT_DUP, PSI_FAULT_DELAY,
/// PSI_FAULT_DELAY_S — see from_env() for semantics.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "sparse/types.hpp"

namespace psi::fault {

/// A straggling rank: compute within the window runs `slowdown`x slower.
struct Straggler {
  int rank = -1;
  double slowdown = 1.0;
  sim::SimTime begin = 0.0;
  sim::SimTime end = std::numeric_limits<sim::SimTime>::infinity();
};

/// A degraded link: transfers between the node pair within the window
/// occupy the NICs `factor`x longer.
struct DegradedLink {
  int node_a = -1;
  int node_b = -1;
  double factor = 1.0;
  sim::SimTime begin = 0.0;
  sim::SimTime end = std::numeric_limits<sim::SimTime>::infinity();
};

/// One probabilistic message-fault rule. A rule applies to a message when
/// its comm class matches (`comm_class` < 0 matches every class) and its
/// post time falls inside [begin, end). Each applicable rule draws its own
/// deterministic uniform per message.
struct MessageFaultRule {
  double drop_prob = 0.0;
  double dup_prob = 0.0;        ///< probability of one extra delivered copy
  double delay_prob = 0.0;
  sim::SimTime delay = 0.0;     ///< extra wire delay when the delay fires
  sim::SimTime dup_spacing = 5e-6;  ///< offset between duplicated copies
  int comm_class = -1;          ///< -1: any class
  sim::SimTime begin = 0.0;
  sim::SimTime end = std::numeric_limits<sim::SimTime>::infinity();
};

/// Declarative fault scenario; see file comment. Builder-style setters
/// return *this so sweeps can compose scenarios inline.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0xfa17) : seed_(seed) {}

  std::uint64_t seed() const { return seed_; }

  FaultPlan& add_straggler(const Straggler& straggler);
  FaultPlan& add_degraded_link(const DegradedLink& link);
  FaultPlan& add_rule(const MessageFaultRule& rule);

  /// Picks `count` distinct straggler ranks in [0, rank_count) from the
  /// plan seed, each slowed by `slowdown` over [begin, end).
  FaultPlan& add_random_stragglers(
      int count, int rank_count, double slowdown, sim::SimTime begin = 0.0,
      sim::SimTime end = std::numeric_limits<sim::SimTime>::infinity());

  /// Picks `count` distinct node pairs in [0, node_count) from the plan
  /// seed, each degraded by `factor` over [begin, end).
  FaultPlan& add_random_degraded_links(
      int count, int node_count, double factor, sim::SimTime begin = 0.0,
      sim::SimTime end = std::numeric_limits<sim::SimTime>::infinity());

  /// One-stop scenario for the robustness sweeps: `stragglers` random
  /// stragglers at `slowdown`x, plus an any-class rule with the given drop
  /// and duplicate probabilities.
  static FaultPlan scenario(std::uint64_t seed, int rank_count,
                            int stragglers, double slowdown, double drop_prob,
                            double dup_prob);

  /// Builds a plan from PSI_FAULT_* environment variables (all optional):
  ///   PSI_FAULT_SEED        plan seed (default 0xfa17)
  ///   PSI_FAULT_STRAGGLERS  random straggler count (needs `rank_count`)
  ///   PSI_FAULT_SLOWDOWN    straggler compute factor (default 8)
  ///   PSI_FAULT_DROP        any-class drop probability
  ///   PSI_FAULT_DUP         any-class duplicate probability
  ///   PSI_FAULT_DELAY       any-class delay probability
  ///   PSI_FAULT_DELAY_S     delay amount in seconds (default 1e-3)
  static FaultPlan from_env(int rank_count);

  const std::vector<Straggler>& stragglers() const { return stragglers_; }
  const std::vector<DegradedLink>& degraded_links() const { return links_; }
  const std::vector<MessageFaultRule>& rules() const { return rules_; }

  /// Compiles the straggler and link schedules into the engine-side
  /// perturbation (pass to Engine::set_perturbation).
  sim::Perturbation perturbation() const;

 private:
  std::uint64_t seed_;
  std::vector<Straggler> stragglers_;
  std::vector<DegradedLink> links_;
  std::vector<MessageFaultRule> rules_;
};

}  // namespace psi::fault
