#include "fault/injector.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace psi::fault {

namespace {

/// Uniform in [0, 1) from a stateless hash of (seed, draw_id, salt).
double uniform_from(std::uint64_t seed, std::uint64_t draw_id,
                    std::uint64_t salt) {
  std::uint64_t state = hash_combine(hash_combine(seed, draw_id), salt);
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

sim::FaultDecision DeterministicInjector::on_send(int src, int dst,
                                                  std::int64_t tag,
                                                  Count bytes, int comm_class,
                                                  sim::SimTime post,
                                                  std::uint64_t draw_id) {
  (void)src;
  (void)dst;
  (void)tag;
  consulted_.fetch_add(1, std::memory_order_relaxed);
  sim::FaultDecision decision;
  const auto& rules = plan_->rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const MessageFaultRule& rule = rules[i];
    if (rule.comm_class >= 0 && rule.comm_class != comm_class) continue;
    if (post < rule.begin || post >= rule.end) continue;
    const std::uint64_t salt = static_cast<std::uint64_t>(i) << 2;
    if (rule.drop_prob > 0.0 &&
        uniform_from(plan_->seed(), draw_id, salt) < rule.drop_prob)
      decision.drop = true;
    if (rule.dup_prob > 0.0 &&
        uniform_from(plan_->seed(), draw_id, salt + 1) < rule.dup_prob) {
      decision.duplicates += 1;
      decision.duplicate_delay =
          std::max(decision.duplicate_delay, rule.dup_spacing);
    }
    if (rule.delay_prob > 0.0 &&
        uniform_from(plan_->seed(), draw_id, salt + 2) < rule.delay_prob)
      decision.delay += rule.delay;
  }
  if (decision.drop) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    dropped_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  if (decision.duplicates > 0) {
    duplicated_.fetch_add(static_cast<Count>(decision.duplicates),
                          std::memory_order_relaxed);
    duplicated_bytes_.fetch_add(
        static_cast<Count>(decision.duplicates) * bytes,
        std::memory_order_relaxed);
  }
  if (decision.delay > 0.0) delayed_.fetch_add(1, std::memory_order_relaxed);
  return decision;
}

}  // namespace psi::fault
