/// \file injector.hpp
/// \brief Deterministic realization of a FaultPlan's message-fault rules.
#pragma once

#include <atomic>
#include <cstdint>

#include "fault/fault_plan.hpp"
#include "sim/fault.hpp"

namespace psi::fault {

/// sim::FaultInjector that realizes a FaultPlan's message rules. Every
/// per-message draw is derived from (plan seed, rule index, the engine's
/// counter-stable draw_id) with stateless hashing: the decision for a given
/// message depends only on the sender's causal history, so the same plan
/// injects the exact same fault sequence every run AND for any engine
/// partition count — the foundation of the "same seed, same makespan"
/// reproducibility guarantee. The injector keeps no draw state of its own;
/// statistics are atomic so partitioned engines may consult it concurrently.
class DeterministicInjector : public sim::FaultInjector {
 public:
  struct Stats {
    Count consulted = 0;  ///< network messages seen
    Count dropped = 0;
    Count duplicated = 0;  ///< extra copies injected
    Count delayed = 0;
    /// Byte-weighted drop/duplicate totals, so the check oracle can assert
    /// exact volume conservation under faults:
    ///   received == sent - dropped_bytes + duplicated_bytes.
    Count dropped_bytes = 0;
    Count duplicated_bytes = 0;  ///< bytes of the extra copies only
  };

  /// The plan must outlive the injector.
  explicit DeterministicInjector(const FaultPlan& plan) : plan_(&plan) {}

  sim::FaultDecision on_send(int src, int dst, std::int64_t tag, Count bytes,
                             int comm_class, sim::SimTime post,
                             std::uint64_t draw_id) override;

  /// Snapshot of the (atomic) counters. Totals are sums of per-message
  /// contributions, so they are identical for any partitioning.
  Stats stats() const {
    Stats snapshot;
    snapshot.consulted = consulted_.load(std::memory_order_relaxed);
    snapshot.dropped = dropped_.load(std::memory_order_relaxed);
    snapshot.duplicated = duplicated_.load(std::memory_order_relaxed);
    snapshot.delayed = delayed_.load(std::memory_order_relaxed);
    snapshot.dropped_bytes = dropped_bytes_.load(std::memory_order_relaxed);
    snapshot.duplicated_bytes =
        duplicated_bytes_.load(std::memory_order_relaxed);
    return snapshot;
  }

 private:
  const FaultPlan* plan_;
  std::atomic<Count> consulted_{0};
  std::atomic<Count> dropped_{0};
  std::atomic<Count> duplicated_{0};
  std::atomic<Count> delayed_{0};
  std::atomic<Count> dropped_bytes_{0};
  std::atomic<Count> duplicated_bytes_{0};
};

}  // namespace psi::fault
