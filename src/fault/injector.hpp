/// \file injector.hpp
/// \brief Deterministic realization of a FaultPlan's message-fault rules.
#pragma once

#include <cstdint>

#include "fault/fault_plan.hpp"
#include "sim/fault.hpp"

namespace psi::fault {

/// sim::FaultInjector that realizes a FaultPlan's message rules. Every
/// per-message draw is derived from (plan seed, rule index, message
/// counter) with stateless hashing: the engine consults the injector in its
/// deterministic send order, so the same plan injects the exact same fault
/// sequence every run — the foundation of the "same seed, same makespan"
/// reproducibility guarantee.
class DeterministicInjector : public sim::FaultInjector {
 public:
  struct Stats {
    Count consulted = 0;  ///< network messages seen
    Count dropped = 0;
    Count duplicated = 0;  ///< extra copies injected
    Count delayed = 0;
    /// Byte-weighted drop/duplicate totals, so the check oracle can assert
    /// exact volume conservation under faults:
    ///   received == sent - dropped_bytes + duplicated_bytes.
    Count dropped_bytes = 0;
    Count duplicated_bytes = 0;  ///< bytes of the extra copies only
  };

  /// The plan must outlive the injector.
  explicit DeterministicInjector(const FaultPlan& plan) : plan_(&plan) {}

  sim::FaultDecision on_send(int src, int dst, std::int64_t tag, Count bytes,
                             int comm_class, sim::SimTime post) override;

  const Stats& stats() const { return stats_; }

 private:
  const FaultPlan* plan_;
  Stats stats_;
  std::uint64_t counter_ = 0;
};

}  // namespace psi::fault
