#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace psi::fault {

namespace {

bool env_double(const char* name, double* out) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return false;
  *out = std::stod(value);
  return true;
}

bool env_u64(const char* name, std::uint64_t* out) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return false;
  *out = std::stoull(value, nullptr, 0);
  return true;
}

}  // namespace

FaultPlan& FaultPlan::add_straggler(const Straggler& straggler) {
  PSI_CHECK_MSG(straggler.rank >= 0, "straggler with invalid rank");
  PSI_CHECK_MSG(straggler.slowdown >= 1.0,
                "straggler slowdown " << straggler.slowdown << " < 1");
  stragglers_.push_back(straggler);
  return *this;
}

FaultPlan& FaultPlan::add_degraded_link(const DegradedLink& link) {
  PSI_CHECK_MSG(link.node_a >= 0 && link.node_b >= 0,
                "degraded link with invalid node pair");
  PSI_CHECK_MSG(link.factor >= 1.0, "link factor " << link.factor << " < 1");
  links_.push_back(link);
  return *this;
}

FaultPlan& FaultPlan::add_rule(const MessageFaultRule& rule) {
  PSI_CHECK_MSG(rule.drop_prob >= 0.0 && rule.drop_prob < 1.0,
                "drop probability " << rule.drop_prob
                                    << " outside [0, 1): a rule dropping "
                                       "every message can never complete");
  PSI_CHECK_MSG(rule.dup_prob >= 0.0 && rule.dup_prob <= 1.0,
                "duplicate probability outside [0, 1]");
  PSI_CHECK_MSG(rule.delay_prob >= 0.0 && rule.delay_prob <= 1.0,
                "delay probability outside [0, 1]");
  PSI_CHECK_MSG(rule.delay >= 0.0 && rule.dup_spacing >= 0.0,
                "negative fault delay");
  rules_.push_back(rule);
  return *this;
}

FaultPlan& FaultPlan::add_random_stragglers(int count, int rank_count,
                                            double slowdown, sim::SimTime begin,
                                            sim::SimTime end) {
  PSI_CHECK_MSG(count <= rank_count,
                "more stragglers (" << count << ") than ranks (" << rank_count
                                    << ")");
  std::vector<int> ranks(static_cast<std::size_t>(rank_count));
  for (int r = 0; r < rank_count; ++r) ranks[static_cast<std::size_t>(r)] = r;
  Rng rng(hash_combine(seed_, 0x57a6u));
  rng.shuffle(ranks);
  for (int i = 0; i < count; ++i)
    add_straggler(Straggler{ranks[static_cast<std::size_t>(i)], slowdown,
                            begin, end});
  return *this;
}

FaultPlan& FaultPlan::add_random_degraded_links(int count, int node_count,
                                                double factor,
                                                sim::SimTime begin,
                                                sim::SimTime end) {
  PSI_CHECK(node_count >= 2);
  Rng rng(hash_combine(seed_, 0x11u));
  std::vector<std::pair<int, int>> chosen;
  while (static_cast<int>(chosen.size()) < count) {
    const int a = static_cast<int>(rng.uniform(
        static_cast<std::uint64_t>(node_count)));
    const int b = static_cast<int>(rng.uniform(
        static_cast<std::uint64_t>(node_count)));
    if (a == b) continue;
    const std::pair<int, int> pair{std::min(a, b), std::max(a, b)};
    if (std::find(chosen.begin(), chosen.end(), pair) != chosen.end())
      continue;
    chosen.push_back(pair);
    add_degraded_link(DegradedLink{pair.first, pair.second, factor, begin,
                                   end});
  }
  return *this;
}

FaultPlan FaultPlan::scenario(std::uint64_t seed, int rank_count,
                              int stragglers, double slowdown,
                              double drop_prob, double dup_prob) {
  FaultPlan plan(seed);
  if (stragglers > 0)
    plan.add_random_stragglers(stragglers, rank_count, slowdown);
  if (drop_prob > 0.0 || dup_prob > 0.0) {
    MessageFaultRule rule;
    rule.drop_prob = drop_prob;
    rule.dup_prob = dup_prob;
    plan.add_rule(rule);
  }
  return plan;
}

FaultPlan FaultPlan::from_env(int rank_count) {
  std::uint64_t seed = 0xfa17;
  env_u64("PSI_FAULT_SEED", &seed);
  FaultPlan plan(seed);

  double stragglers = 0.0;
  double slowdown = 8.0;
  env_double("PSI_FAULT_SLOWDOWN", &slowdown);
  if (env_double("PSI_FAULT_STRAGGLERS", &stragglers) && stragglers > 0.0)
    plan.add_random_stragglers(static_cast<int>(stragglers), rank_count,
                               slowdown);

  MessageFaultRule rule;
  bool any = false;
  any |= env_double("PSI_FAULT_DROP", &rule.drop_prob);
  any |= env_double("PSI_FAULT_DUP", &rule.dup_prob);
  any |= env_double("PSI_FAULT_DELAY", &rule.delay_prob);
  rule.delay = 1e-3;
  env_double("PSI_FAULT_DELAY_S", &rule.delay);
  if (any && (rule.drop_prob > 0.0 || rule.dup_prob > 0.0 ||
              rule.delay_prob > 0.0))
    plan.add_rule(rule);
  return plan;
}

sim::Perturbation FaultPlan::perturbation() const {
  sim::Perturbation perturbation;
  for (const Straggler& s : stragglers_)
    perturbation.add_compute_slowdown(s.rank, s.begin, s.end, s.slowdown);
  for (const DegradedLink& l : links_)
    perturbation.add_link_degradation(l.node_a, l.node_b, l.begin, l.end,
                                      l.factor);
  return perturbation;
}

}  // namespace psi::fault
