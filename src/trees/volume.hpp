/// \file volume.hpp
/// \brief Exact per-rank traffic accounting for tree collectives, computed
/// without running the simulator.
///
/// Communication volume is a pure function of the tree shapes and payload
/// sizes, so the paper's Tables I-II and Figures 4-7 (volume statistics,
/// histograms and heat maps) can be regenerated analytically. The simulator
/// produces identical numbers (asserted by tests); it is only needed when
/// *time* matters (Figures 8-9).
#pragma once

#include <vector>

#include "trees/comm_tree.hpp"

namespace psi::trees {

class VolumeAccumulator {
 public:
  explicit VolumeAccumulator(int rank_count);

  /// Broadcast of `bytes` over `tree`: every participant sends
  /// bytes * (#children); every non-root participant receives `bytes`.
  void add_bcast(const CommTree& tree, Count bytes);

  /// Reduction of `bytes` contributions over `tree` (edges reversed):
  /// every non-root participant sends `bytes`; every participant receives
  /// bytes * (#children).
  void add_reduce(const CommTree& tree, Count bytes);

  /// Point-to-point transfer (the cross sends of PSelInv). No-op when
  /// src == dst.
  void add_p2p(int src, int dst, Count bytes);

  const std::vector<Count>& bytes_sent() const { return sent_; }
  const std::vector<Count>& bytes_received() const { return received_; }

 private:
  std::vector<Count> sent_;
  std::vector<Count> received_;
};

}  // namespace psi::trees
