#include "trees/comm_tree.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace psi::trees {

const char* scheme_name(TreeScheme scheme) {
  switch (scheme) {
    case TreeScheme::kFlat: return "Flat-Tree";
    case TreeScheme::kBinary: return "Binary-Tree";
    case TreeScheme::kShiftedBinary: return "Shifted Binary-Tree";
    case TreeScheme::kRandomPerm: return "Random-Perm-Tree";
    case TreeScheme::kHybrid: return "Hybrid-Tree";
    case TreeScheme::kBinomial: return "Binomial-Tree";
    case TreeScheme::kShiftedBinomial: return "Shifted Binomial-Tree";
  }
  return "unknown";
}

TreeScheme parse_scheme(const std::string& name) {
  if (name == "flat" || name == "Flat-Tree") return TreeScheme::kFlat;
  if (name == "binary" || name == "Binary-Tree") return TreeScheme::kBinary;
  if (name == "shifted" || name == "Shifted Binary-Tree")
    return TreeScheme::kShiftedBinary;
  if (name == "randperm" || name == "Random-Perm-Tree")
    return TreeScheme::kRandomPerm;
  if (name == "hybrid" || name == "Hybrid-Tree") return TreeScheme::kHybrid;
  if (name == "binomial" || name == "Binomial-Tree") return TreeScheme::kBinomial;
  if (name == "shifted-binomial" || name == "Shifted Binomial-Tree")
    return TreeScheme::kShiftedBinomial;
  throw Error("unknown tree scheme: " + name);
}

namespace {

/// Recursive binary construction (paper §III): the ordered receiver range
/// [lo, hi) is split into two halves and the FIRST rank of each half becomes
/// a child of `parent_idx`, recursing within each half. The root therefore
/// sends exactly two messages (paper Fig. 3(b): P4 -> {P1, P5};
/// P1 -> {P2, P3}; P5 -> {P6}).
void build_binary(std::size_t lo, std::size_t hi, int parent_idx,
                  std::vector<int>& parent) {
  if (lo >= hi) return;
  const std::size_t mid = lo + (hi - lo + 1) / 2;
  // First half [lo, mid): head lo.
  parent[lo] = parent_idx;
  build_binary(lo + 1, mid, static_cast<int>(lo), parent);
  // Second half [mid, hi): head mid.
  if (mid < hi) {
    parent[mid] = parent_idx;
    build_binary(mid + 1, hi, static_cast<int>(mid), parent);
  }
}

/// Binomial construction over order_[0..n): the parent of index i > 0 is i
/// with its highest set bit cleared (the rank that sent to it in round
/// log2(highest bit)).
void build_binomial(std::size_t n, std::vector<int>& parent) {
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t highest = i;
    while (highest & (highest - 1)) highest &= highest - 1;  // top set bit
    parent[i] = static_cast<int>(i - highest);
  }
}

}  // namespace

CommTree CommTree::build(const TreeOptions& options, int root,
                         std::vector<int> receivers,
                         std::uint64_t collective_id) {
  PSI_CHECK(root >= 0);
  PSI_CHECK_MSG(std::is_sorted(receivers.begin(), receivers.end()),
                "receiver list must be sorted ascending");
  for (int r : receivers)
    PSI_CHECK_MSG(r != root, "root must not appear in the receiver list");

  TreeScheme scheme = options.scheme;
  if (scheme == TreeScheme::kHybrid)
    scheme = (static_cast<int>(receivers.size()) + 1 <= options.hybrid_flat_threshold)
                 ? TreeScheme::kFlat
                 : TreeScheme::kShiftedBinary;

  // Reorder receivers per scheme.
  switch (scheme) {
    case TreeScheme::kFlat:
    case TreeScheme::kBinary:
    case TreeScheme::kBinomial:
      break;  // natural ascending order
    case TreeScheme::kShiftedBinary:
    case TreeScheme::kShiftedBinomial: {
      if (receivers.size() > 1) {
        const std::uint64_t h = hash_combine(options.seed, collective_id);
        const auto shift = static_cast<std::size_t>(
            h % static_cast<std::uint64_t>(receivers.size()));
        std::rotate(receivers.begin(),
                    receivers.begin() + static_cast<std::ptrdiff_t>(shift),
                    receivers.end());
      }
      break;
    }
    case TreeScheme::kRandomPerm: {
      Rng rng(hash_combine(options.seed ^ 0x9127ULL, collective_id));
      rng.shuffle(receivers);
      break;
    }
    case TreeScheme::kHybrid:
      PSI_CHECK(false);  // resolved above
  }

  CommTree tree;
  tree.root_ = root;
  tree.order_.reserve(receivers.size() + 1);
  tree.order_.push_back(root);
  tree.order_.insert(tree.order_.end(), receivers.begin(), receivers.end());
  tree.parent_.assign(tree.order_.size(), -1);

  if (scheme == TreeScheme::kFlat) {
    for (std::size_t i = 1; i < tree.order_.size(); ++i)
      tree.parent_[i] = 0;  // all children of the root
  } else if (scheme == TreeScheme::kBinomial ||
             scheme == TreeScheme::kShiftedBinomial) {
    build_binomial(tree.order_.size(), tree.parent_);
  } else {
    build_binary(1, tree.order_.size(), 0, tree.parent_);
  }

  tree.children_.assign(tree.order_.size(), {});
  for (std::size_t i = 1; i < tree.order_.size(); ++i) {
    PSI_ASSERT(tree.parent_[i] >= 0);
    tree.children_[static_cast<std::size_t>(tree.parent_[i])].push_back(
        tree.order_[i]);
  }

  tree.index_of_.reserve(tree.order_.size());
  for (std::size_t i = 0; i < tree.order_.size(); ++i)
    tree.index_of_.emplace_back(tree.order_[i], static_cast<int>(i));
  std::sort(tree.index_of_.begin(), tree.index_of_.end());
  for (std::size_t i = 1; i < tree.index_of_.size(); ++i)
    PSI_CHECK_MSG(tree.index_of_[i - 1].first != tree.index_of_[i].first,
                  "duplicate participant rank " << tree.index_of_[i].first);
  return tree;
}

int CommTree::index_of(int rank) const {
  const auto it = std::lower_bound(
      index_of_.begin(), index_of_.end(), std::make_pair(rank, -1));
  if (it == index_of_.end() || it->first != rank) return -1;
  return it->second;
}

bool CommTree::participates(int rank) const { return index_of(rank) >= 0; }

const std::vector<int>& CommTree::children_of(int rank) const {
  const int idx = index_of(rank);
  PSI_CHECK_MSG(idx >= 0, "rank " << rank << " is not a participant");
  return children_[static_cast<std::size_t>(idx)];
}

int CommTree::parent_of(int rank) const {
  const int idx = index_of(rank);
  PSI_CHECK_MSG(idx >= 0, "rank " << rank << " is not a participant");
  const int pidx = parent_[static_cast<std::size_t>(idx)];
  return pidx < 0 ? -1 : order_[static_cast<std::size_t>(pidx)];
}

int CommTree::depth() const {
  std::vector<int> level(order_.size(), 0);
  int depth = 0;
  for (std::size_t i = 1; i < order_.size(); ++i) {
    // parent_[i] < i holds for flat trees and the recursive construction
    // (parents precede children in order_), so one pass suffices.
    level[i] = level[static_cast<std::size_t>(parent_[i])] + 1;
    depth = std::max(depth, level[i]);
  }
  return depth;
}

int CommTree::internal_node_count() const {
  int count = 0;
  for (const auto& kids : children_)
    if (!kids.empty()) ++count;
  return count;
}

}  // namespace psi::trees
