#include "trees/comm_tree.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace psi::trees {

const char* scheme_name(TreeScheme scheme) {
  switch (scheme) {
    case TreeScheme::kFlat: return "Flat-Tree";
    case TreeScheme::kBinary: return "Binary-Tree";
    case TreeScheme::kShiftedBinary: return "Shifted Binary-Tree";
    case TreeScheme::kRandomPerm: return "Random-Perm-Tree";
    case TreeScheme::kHybrid: return "Hybrid-Tree";
    case TreeScheme::kBinomial: return "Binomial-Tree";
    case TreeScheme::kShiftedBinomial: return "Shifted Binomial-Tree";
  }
  return "unknown";
}

TreeScheme parse_scheme(const std::string& name) {
  if (name == "flat" || name == "Flat-Tree") return TreeScheme::kFlat;
  if (name == "binary" || name == "Binary-Tree") return TreeScheme::kBinary;
  if (name == "shifted" || name == "Shifted Binary-Tree")
    return TreeScheme::kShiftedBinary;
  if (name == "randperm" || name == "Random-Perm-Tree")
    return TreeScheme::kRandomPerm;
  if (name == "hybrid" || name == "Hybrid-Tree") return TreeScheme::kHybrid;
  if (name == "binomial" || name == "Binomial-Tree") return TreeScheme::kBinomial;
  if (name == "shifted-binomial" || name == "Shifted Binomial-Tree")
    return TreeScheme::kShiftedBinomial;
  throw Error("unknown tree scheme: " + name);
}

namespace {

/// Recursive binary construction (paper §III): the ordered receiver range
/// [lo, hi) is split into two halves and the FIRST rank of each half becomes
/// a child of `parent_idx`, recursing within each half. The root therefore
/// sends exactly two messages (paper Fig. 3(b): P4 -> {P1, P5};
/// P1 -> {P2, P3}; P5 -> {P6}).
void build_binary(std::size_t lo, std::size_t hi, int parent_idx,
                  std::vector<int>& parent) {
  if (lo >= hi) return;
  const std::size_t mid = lo + (hi - lo + 1) / 2;
  // First half [lo, mid): head lo.
  parent[lo] = parent_idx;
  build_binary(lo + 1, mid, static_cast<int>(lo), parent);
  // Second half [mid, hi): head mid.
  if (mid < hi) {
    parent[mid] = parent_idx;
    build_binary(mid + 1, hi, static_cast<int>(mid), parent);
  }
}

/// Binomial construction over order_[0..n): the parent of index i > 0 is i
/// with its highest set bit cleared (the rank that sent to it in round
/// log2(highest bit)).
void build_binomial(std::size_t n, std::vector<int>& parent) {
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t highest = i;
    while (highest & (highest - 1)) highest &= highest - 1;  // top set bit
    parent[i] = static_cast<int>(i - highest);
  }
}

}  // namespace

CommTree CommTree::build(const TreeOptions& options, int root,
                         std::vector<int> receivers,
                         std::uint64_t collective_id) {
  PSI_CHECK(root >= 0);
  PSI_CHECK_MSG(std::is_sorted(receivers.begin(), receivers.end()),
                "receiver list must be sorted ascending");
  for (int r : receivers)
    PSI_CHECK_MSG(r != root, "root must not appear in the receiver list");

  TreeScheme scheme = options.scheme;
  if (scheme == TreeScheme::kHybrid)
    scheme = (static_cast<int>(receivers.size()) + 1 <= options.hybrid_flat_threshold)
                 ? TreeScheme::kFlat
                 : TreeScheme::kShiftedBinary;

  // Reorder receivers per scheme.
  switch (scheme) {
    case TreeScheme::kFlat:
    case TreeScheme::kBinary:
    case TreeScheme::kBinomial:
      break;  // natural ascending order
    case TreeScheme::kShiftedBinary:
    case TreeScheme::kShiftedBinomial: {
      if (receivers.size() > 1) {
        const std::uint64_t h = hash_combine(options.seed, collective_id);
        const auto shift = static_cast<std::size_t>(
            h % static_cast<std::uint64_t>(receivers.size()));
        std::rotate(receivers.begin(),
                    receivers.begin() + static_cast<std::ptrdiff_t>(shift),
                    receivers.end());
      }
      break;
    }
    case TreeScheme::kRandomPerm: {
      Rng rng(hash_combine(options.seed ^ 0x9127ULL, collective_id));
      rng.shuffle(receivers);
      break;
    }
    case TreeScheme::kHybrid:
      PSI_CHECK(false);  // resolved above
  }

  CommTree tree;
  tree.root_ = root;
  tree.order_.reserve(receivers.size() + 1);
  tree.order_.push_back(root);
  tree.order_.insert(tree.order_.end(), receivers.begin(), receivers.end());
  tree.parent_.assign(tree.order_.size(), -1);

  if (scheme == TreeScheme::kFlat) {
    for (std::size_t i = 1; i < tree.order_.size(); ++i)
      tree.parent_[i] = 0;  // all children of the root
  } else if (scheme == TreeScheme::kBinomial ||
             scheme == TreeScheme::kShiftedBinomial) {
    build_binomial(tree.order_.size(), tree.parent_);
  } else {
    build_binary(1, tree.order_.size(), 0, tree.parent_);
  }

  // Membership positions: a rank's position is its index in the sorted
  // participant list. The scheme's rotation/permutation above changes
  // order_, not membership, so processor row/column groups stay arithmetic
  // progressions (detected below) no matter the scheme.
  const std::size_t np = tree.order_.size();
  tree.sorted_ranks_ = tree.order_;
  std::sort(tree.sorted_ranks_.begin(), tree.sorted_ranks_.end());
  for (std::size_t i = 1; i < np; ++i)
    PSI_CHECK_MSG(tree.sorted_ranks_[i - 1] != tree.sorted_ranks_[i],
                  "duplicate participant rank " << tree.sorted_ranks_[i]);
  bool is_ap = true;
  long long stride = 1;
  if (np >= 2) {
    stride = static_cast<long long>(tree.sorted_ranks_[1]) -
             tree.sorted_ranks_[0];
    for (std::size_t i = 2; i < np && is_ap; ++i)
      is_ap = static_cast<long long>(tree.sorted_ranks_[i]) -
                  tree.sorted_ranks_[i - 1] ==
              stride;
  }
  tree.ap_first_ = tree.sorted_ranks_.front();
  tree.ap_last_ = tree.sorted_ranks_.back();
  if (is_ap) {
    tree.ap_stride_ = static_cast<int>(stride);
    tree.sorted_ranks_.clear();
    tree.sorted_ranks_.shrink_to_fit();
  }

  // order_ index -> membership position, and its inverse for cold lookups.
  std::vector<int> order_pos(np);
  tree.pos_to_order_.resize(np);
  for (std::size_t i = 0; i < np; ++i) {
    const int pos = tree.position_of(tree.order_[i]);
    PSI_ASSERT(pos >= 0);
    order_pos[i] = pos;
    tree.pos_to_order_[static_cast<std::size_t>(pos)] = static_cast<int>(i);
  }

  // Children, CSR-flattened by the parent's membership position. Within one
  // parent the children appear in increasing order_ index i, so the fill
  // pass reproduces the per-parent child order of a nested layout.
  tree.children_offsets_.assign(np + 1, 0);
  for (std::size_t i = 1; i < np; ++i) {
    PSI_ASSERT(tree.parent_[i] >= 0);
    ++tree.children_offsets_[static_cast<std::size_t>(
        order_pos[static_cast<std::size_t>(tree.parent_[i])]) + 1];
  }
  for (std::size_t i = 1; i <= np; ++i)
    tree.children_offsets_[i] += tree.children_offsets_[i - 1];
  tree.children_flat_.resize(np > 0 ? np - 1 : 0);
  {
    std::vector<int> cursor(tree.children_offsets_.begin(),
                            tree.children_offsets_.end() - 1);
    for (std::size_t i = 1; i < np; ++i)
      tree.children_flat_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(
              order_pos[static_cast<std::size_t>(tree.parent_[i])])]++)] =
          tree.order_[i];
  }
  return tree;
}

int CommTree::position_of_slow(int rank) const {
  const auto it =
      std::lower_bound(sorted_ranks_.begin(), sorted_ranks_.end(), rank);
  if (it == sorted_ranks_.end() || *it != rank) return -1;
  return static_cast<int>(it - sorted_ranks_.begin());
}

int CommTree::parent_of(int rank) const {
  const int pos = position_of(rank);
  PSI_CHECK_MSG(pos >= 0, "rank " << rank << " is not a participant");
  const int idx = pos_to_order_[static_cast<std::size_t>(pos)];
  const int pidx = parent_[static_cast<std::size_t>(idx)];
  return pidx < 0 ? -1 : order_[static_cast<std::size_t>(pidx)];
}

int CommTree::depth() const {
  std::vector<int> level(order_.size(), 0);
  int depth = 0;
  for (std::size_t i = 1; i < order_.size(); ++i) {
    // parent_[i] < i holds for flat trees and the recursive construction
    // (parents precede children in order_), so one pass suffices.
    level[i] = level[static_cast<std::size_t>(parent_[i])] + 1;
    depth = std::max(depth, level[i]);
  }
  return depth;
}

int CommTree::internal_node_count() const {
  int count = 0;
  for (std::size_t i = 0; i + 1 < children_offsets_.size(); ++i)
    if (children_offsets_[i + 1] > children_offsets_[i]) ++count;
  return count;
}

CommTree::Raw CommTree::to_raw() const {
  Raw raw;
  raw.root = root_;
  raw.order = order_;
  raw.parent = parent_;
  raw.children_offsets = children_offsets_;
  raw.children_flat = children_flat_;
  raw.pos_to_order = pos_to_order_;
  raw.ap_first = ap_first_;
  raw.ap_last = ap_last_;
  raw.ap_stride = ap_stride_;
  raw.sorted_ranks = sorted_ranks_;
  return raw;
}

CommTree CommTree::from_raw(Raw raw) {
  const std::size_t np = raw.order.size();
  PSI_CHECK_MSG(raw.parent.size() == np && raw.pos_to_order.size() == np,
                "comm tree image: order/parent/pos_to_order sizes disagree ("
                    << np << "/" << raw.parent.size() << "/"
                    << raw.pos_to_order.size() << ")");
  PSI_CHECK_MSG(np == 0 || raw.children_offsets.size() == np + 1,
                "comm tree image: children_offsets has "
                    << raw.children_offsets.size() << " entries, expected "
                    << np + 1);
  PSI_CHECK_MSG(np == 0 || (raw.children_offsets.front() == 0 &&
                            static_cast<std::size_t>(
                                raw.children_offsets.back()) ==
                                raw.children_flat.size()),
                "comm tree image: children CSR offsets do not cover the flat "
                "child array");
  PSI_CHECK_MSG(raw.ap_stride > 0 ? raw.sorted_ranks.empty()
                                  : raw.sorted_ranks.size() == np,
                "comm tree image: membership index shape mismatch");
  PSI_CHECK_MSG(np == 0 || (!raw.order.empty() && raw.order.front() == raw.root),
                "comm tree image: order does not start at the root");
  CommTree tree;
  tree.root_ = raw.root;
  tree.order_ = std::move(raw.order);
  tree.parent_ = std::move(raw.parent);
  tree.children_offsets_ = std::move(raw.children_offsets);
  tree.children_flat_ = std::move(raw.children_flat);
  tree.pos_to_order_ = std::move(raw.pos_to_order);
  tree.ap_first_ = raw.ap_first;
  tree.ap_last_ = raw.ap_last;
  tree.ap_stride_ = raw.ap_stride;
  tree.sorted_ranks_ = std::move(raw.sorted_ranks);
  return tree;
}

}  // namespace psi::trees
