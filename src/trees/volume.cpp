#include "trees/volume.hpp"

#include "common/check.hpp"

namespace psi::trees {

VolumeAccumulator::VolumeAccumulator(int rank_count)
    : sent_(static_cast<std::size_t>(rank_count), 0),
      received_(static_cast<std::size_t>(rank_count), 0) {
  PSI_CHECK(rank_count > 0);
}

void VolumeAccumulator::add_bcast(const CommTree& tree, Count bytes) {
  PSI_CHECK(bytes >= 0);
  for (int rank : tree.participants()) {
    const auto nchildren = static_cast<Count>(tree.children_of(rank).size());
    sent_[static_cast<std::size_t>(rank)] += bytes * nchildren;
    if (rank != tree.root()) received_[static_cast<std::size_t>(rank)] += bytes;
  }
}

void VolumeAccumulator::add_reduce(const CommTree& tree, Count bytes) {
  PSI_CHECK(bytes >= 0);
  for (int rank : tree.participants()) {
    const auto nchildren = static_cast<Count>(tree.children_of(rank).size());
    received_[static_cast<std::size_t>(rank)] += bytes * nchildren;
    if (rank != tree.root()) sent_[static_cast<std::size_t>(rank)] += bytes;
  }
}

void VolumeAccumulator::add_p2p(int src, int dst, Count bytes) {
  PSI_CHECK(bytes >= 0);
  if (src == dst) return;
  sent_[static_cast<std::size_t>(src)] += bytes;
  received_[static_cast<std::size_t>(dst)] += bytes;
}

}  // namespace psi::trees
