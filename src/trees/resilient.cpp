#include "trees/resilient.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace psi::trees {

void ResilientChannel::send(sim::Context& ctx, int dst, std::int64_t tag,
                            Count bytes, int comm_class,
                            std::shared_ptr<const DenseMatrix> data,
                            bool idempotent, const CommTree* tree) {
  if (!config_.enabled || dst == self_) {
    // Disabled, or a local hand-off (which the engine delivers losslessly):
    // no envelope, no tracking.
    ctx.send(dst, tag, bytes, comm_class, std::move(data));
    return;
  }
  const std::int64_t seq = next_seq_++;
  Pending entry;
  entry.dst = dst;
  entry.tag = tag;
  entry.bytes = bytes;
  entry.comm_class = comm_class;
  entry.data = std::move(data);
  entry.idempotent = idempotent;
  entry.tree = tree;
  entry.backoff = config_.retry_base +
                  static_cast<double>(bytes) * config_.retry_per_byte;
  count(&ChannelStats::tracked_sends);
  transmit(ctx, seq, entry);
  inflight_.emplace(seq, std::move(entry));
}

void ResilientChannel::transmit(sim::Context& ctx, std::int64_t seq,
                                Pending& entry) {
  const std::int64_t kind = entry.idempotent ? kEnvIdem : kEnvData;
  ctx.send(entry.dst, entry.tag, entry.bytes, entry.comm_class, entry.data,
           make_env(kind, seq));
  entry.timer_id = ctx.set_timer(entry.backoff, seq);
  entry.backoff = std::min(entry.backoff * config_.retry_backoff,
                           std::max(config_.retry_cap, entry.backoff));
}

void ResilientChannel::bcast_forward(
    sim::Context& ctx, const CommTree& tree, std::int64_t tag, Count bytes,
    int comm_class, const std::shared_ptr<const DenseMatrix>& payload) {
  if (!config_.enabled) {
    for (int child : tree.children_of(self_))
      ctx.send(child, tag, bytes, comm_class, payload);
    return;
  }
  for (int child : tree.children_of(self_))
    send(ctx, child, tag, bytes, comm_class, payload, /*idempotent=*/true,
         &tree);
}

bool ResilientChannel::on_message(sim::Context& ctx, const sim::Message& msg) {
  if (!config_.enabled || msg.env == 0) return true;
  const std::int64_t kind = env_kind(msg.env);
  const std::int64_t seq = env_seq(msg.env);
  if (kind == kEnvAck) {
    const auto it = inflight_.find(seq);
    if (it == inflight_.end()) {
      // Ack for an entry already released (duplicate delivery, or a retry
      // that crossed the first ack on the wire).
      count(&ChannelStats::stale_acks);
    } else {
      ctx.cancel_timer(it->second.timer_id);
      inflight_.erase(it);
    }
    return false;
  }
  PSI_CHECK_MSG(kind == kEnvData || kind == kEnvIdem,
                "resilient channel: unknown envelope kind " << kind);
  // Ack every copy (even duplicates): the sender may be retrying because a
  // previous ack was lost.
  ctx.send(msg.src, msg.tag, config_.ack_bytes, config_.ack_comm_class,
           nullptr, make_env(kEnvAck, seq));
  count(&ChannelStats::acks_sent);
  bool fresh;
  if (kind == kEnvIdem) {
    fresh = seen_tags_.insert(msg.tag).second;
  } else {
    // (src, seq) key: seq is per-sender, src < 2^24 in any realistic grid.
    PSI_CHECK(seq < (std::int64_t{1} << 40) && msg.src < (1 << 24));
    const std::uint64_t key = (static_cast<std::uint64_t>(msg.src) << 40) |
                              static_cast<std::uint64_t>(seq);
    fresh = seen_src_seq_.insert(key).second;
  }
  if (!fresh) count(&ChannelStats::duplicates_suppressed);
  return fresh;
}

bool ResilientChannel::on_timer(sim::Context& ctx, std::int64_t tag) {
  if (!config_.enabled) return false;
  const auto it = inflight_.find(tag);
  if (it == inflight_.end()) return false;  // a program timer, not ours
  const std::int64_t seq = it->first;
  it->second.attempts += 1;
  count(&ChannelStats::retries);
  const bool reroute = config_.reroute && it->second.tree != nullptr &&
                       !it->second.rerouted &&
                       it->second.attempts >= config_.stall_retries &&
                       it->second.tree->participates(it->second.dst);
  if (reroute) {
    // Graceful degradation: the forwarding child looks stalled. Re-parent
    // its subtree to this rank by sending the payload directly to its
    // children. The child itself keeps being retried — if it was merely
    // slow, the extra copies are suppressed as duplicates downstream.
    it->second.rerouted = true;
    count(&ChannelStats::reroutes);
    // Copy out what the recursive send()s need: they insert into inflight_
    // and may rehash it, invalidating `it`.
    const Pending entry = it->second;
    for (const int grandchild : entry.tree->children_of(entry.dst))
      send(ctx, grandchild, entry.tag, entry.bytes, entry.comm_class,
           entry.data, /*idempotent=*/true, entry.tree);
  }
  transmit(ctx, seq, inflight_.at(seq));
  return true;
}

}  // namespace psi::trees
