#include "trees/protocol.hpp"

#include "common/check.hpp"

namespace psi::trees {

void bcast_forward(sim::Context& ctx, const CommTree& tree, std::int64_t tag,
                   Count bytes, int comm_class,
                   const std::shared_ptr<const DenseMatrix>& payload) {
  for (int child : tree.children_of(ctx.rank()))
    ctx.send(child, tag, bytes, comm_class, payload);
}

bool ReduceState::absorb(std::shared_ptr<DenseMatrix> value) {
  PSI_CHECK_MSG(pending_ > 0, "reduction already complete");
  started_ = true;
  --pending_;
  if (value) {
    if (!acc_) {
      acc_ = std::move(value);
    } else {
      PSI_CHECK(acc_->rows() == value->rows() && acc_->cols() == value->cols());
      for (Int c = 0; c < acc_->cols(); ++c)
        for (Int r = 0; r < acc_->rows(); ++r)
          (*acc_)(r, c) += (*value)(r, c);
    }
  }
  return pending_ == 0;
}

}  // namespace psi::trees
