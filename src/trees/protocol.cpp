#include "trees/protocol.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace psi::trees {

void bcast_forward(sim::Context& ctx, const CommTree& tree, std::int64_t tag,
                   Count bytes, int comm_class,
                   const std::shared_ptr<const DenseMatrix>& payload) {
  for (int child : tree.children_of(ctx.rank()))
    ctx.send(child, tag, bytes, comm_class, payload);
}

ReduceState::ReduceState(int child_count)
    : pending_(child_count + 1), child_count_(child_count) {
  PSI_CHECK_MSG(child_count >= 0, "negative reduction child count");
}

namespace {
/// TEST-ONLY (see protocol.hpp): the planted order-dependence bug.
bool g_fold_in_arrival_order = false;
}  // namespace

void ReduceState::test_set_fold_in_arrival_order(bool enabled) {
  g_fold_in_arrival_order = enabled;
}

bool ReduceState::test_fold_in_arrival_order() {
  return g_fold_in_arrival_order;
}

ReduceState::ReduceState(std::span<const int> child_ranks)
    : canonical_(true),
      fold_on_arrival_(g_fold_in_arrival_order),
      pending_(static_cast<int>(child_ranks.size()) + 1),
      child_count_(static_cast<int>(child_ranks.size())),
      child_ranks_(child_ranks.begin(), child_ranks.end()),
      child_values_(child_ranks.size()),
      child_present_(child_ranks.size(), false) {}

void ReduceState::note_arrival() {
  PSI_CHECK_MSG(pending_ > 0, "contribution to an already-complete reduction");
  started_ = true;
  --pending_;
}

void ReduceState::add_into_acc(const DenseMatrix& value) {
  if (!acc_) {
    acc_ = std::make_shared<DenseMatrix>(value);
    return;
  }
  PSI_CHECK_MSG(
      acc_->rows() == value.rows() && acc_->cols() == value.cols(),
      "reduction contribution shape mismatch: " << acc_->rows() << "x"
                                                << acc_->cols() << " vs "
                                                << value.rows() << "x"
                                                << value.cols());
  for (Int c = 0; c < acc_->cols(); ++c)
    for (Int r = 0; r < acc_->rows(); ++r) (*acc_)(r, c) += value(r, c);
}

bool ReduceState::add_local(std::shared_ptr<DenseMatrix> value) {
  PSI_CHECK_MSG(!local_added_, "add_local called twice on one reduction");
  note_arrival();
  local_added_ = true;
  if (canonical_ && !fold_on_arrival_) {
    local_value_ = std::move(value);
  } else if (value) {
    if (!acc_) {
      acc_ = std::move(value);
    } else {
      add_into_acc(*value);
    }
  }
  return pending_ == 0;
}

bool ReduceState::add_child(const std::shared_ptr<const DenseMatrix>& value) {
  PSI_CHECK_MSG(!canonical_,
                "canonical-mode ReduceState requires add_child_from");
  PSI_CHECK_MSG(children_seen_ < child_count_,
                "reduction received more child contributions ("
                    << children_seen_ + 1 << ") than tree children ("
                    << child_count_ << ")");
  note_arrival();
  ++children_seen_;
  if (value) add_into_acc(*value);
  return pending_ == 0;
}

bool ReduceState::add_child_from(int src,
                                 std::shared_ptr<const DenseMatrix> value) {
  if (!canonical_) return add_child(value);
  const auto it = std::find(child_ranks_.begin(), child_ranks_.end(), src);
  PSI_CHECK_MSG(it != child_ranks_.end(),
                "reduction contribution from rank " << src
                                                    << ", not a tree child");
  const auto slot = static_cast<std::size_t>(it - child_ranks_.begin());
  PSI_CHECK_MSG(!child_present_[slot],
                "duplicate reduction contribution from child rank " << src);
  note_arrival();
  ++children_seen_;
  child_present_[slot] = true;
  if (fold_on_arrival_) {
    // Planted bug active: sum eagerly instead of parking, reintroducing the
    // arrival-order dependence the canonical mode exists to remove.
    if (value) add_into_acc(*value);
  } else {
    child_values_[slot] = std::move(value);
  }
  return pending_ == 0;
}

std::shared_ptr<DenseMatrix> ReduceState::accumulated() {
  if (canonical_ && !folded_) {
    PSI_CHECK_MSG(ready(), "canonical reduction folded before completion");
    folded_ = true;
    // Fold in the fixed order (local, then children in tree order) so the
    // floating-point sum is independent of arrival order.
    if (local_value_) add_into_acc(*local_value_);
    local_value_.reset();
    for (auto& value : child_values_) {
      if (value) add_into_acc(*value);
      value.reset();
    }
  }
  return acc_;
}

}  // namespace psi::trees
