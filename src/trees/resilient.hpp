/// \file resilient.hpp
/// \brief Reliable-delivery layer for the asynchronous tree collectives:
/// acks, timer-driven retransmission, duplicate suppression, and graceful
/// tree degradation around stalled forwarders.
///
/// The paper's protocol (§III) assumes a lossless, uniformly-fast network.
/// ResilientChannel wraps Context::send with an end-to-end protocol that
/// survives the failures real interconnects exhibit — dropped and
/// duplicated messages, stragglers, collapsed links — without changing the
/// application-visible message sequence:
///
///  * every tracked send carries an envelope (kind | per-sender seq) in
///    Message::env; the receiver acks each copy it sees;
///  * the sender keeps the payload in an in-flight table and arms a retry
///    timer (bounded exponential backoff, base scaled by message size);
///    an ack cancels the timer and releases the entry;
///  * the receiver suppresses duplicates — broadcast-style payloads
///    (idempotent: any copy is as good as another) dedup by tag, so a copy
///    arriving via a re-routed path is also recognized; accumulating
///    reduction contributions dedup by (src, seq), which retransmissions
///    preserve;
///  * graceful degradation: when a tree-forwarding child has not acked
///    after `stall_retries` retransmissions, the sender re-parents the
///    child's subtree to itself — it sends the payload directly to the
///    stalled child's children (its grandchildren), trading extra volume
///    for progress. The stalled child keeps being retried too: if it was
///    merely slow, the late copies are suppressed as duplicates.
///
/// Determinism: the channel adds no randomness. Under a deterministic
/// injector the whole faulty run — including every retry and re-route — is
/// a deterministic function of the seeds.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "sim/engine.hpp"
#include "trees/comm_tree.hpp"

namespace psi::trees {

struct ResilienceConfig {
  bool enabled = false;
  /// Wire size of an ack message.
  Count ack_bytes = 32;
  /// Accounting class used for acks (give it a dedicated class so protocol
  /// overhead is visible in the per-class traffic counters).
  int ack_comm_class = 0;
  /// First retry deadline: retry_base + bytes * retry_per_byte, doubled
  /// (retry_backoff) per unacked retry up to retry_cap.
  sim::SimTime retry_base = 200e-6;
  double retry_per_byte = 2e-9;
  sim::SimTime retry_cap = 20e-3;
  double retry_backoff = 2.0;
  /// Unacked retransmissions before a tree-forwarding destination is
  /// declared stalled and its subtree re-parented.
  int stall_retries = 3;
  /// Master switch for the re-parenting degradation.
  bool reroute = true;
};

struct ChannelStats {
  Count tracked_sends = 0;         ///< first transmissions under the protocol
  Count retries = 0;               ///< timer-driven retransmissions
  Count acks_sent = 0;
  Count stale_acks = 0;            ///< acks for already-released entries
  Count duplicates_suppressed = 0; ///< data copies dropped by the receiver
  Count reroutes = 0;              ///< stalled subtrees re-parented

  void merge(const ChannelStats& other) {
    tracked_sends += other.tracked_sends;
    retries += other.retries;
    acks_sent += other.acks_sent;
    stale_acks += other.stale_acks;
    duplicates_suppressed += other.duplicates_suppressed;
    reroutes += other.reroutes;
  }
};

/// Per-rank reliable-delivery endpoint. Embed one in a rank program, route
/// every network send through send()/bcast_forward(), gate on_message with
/// on_message() and on_timer with on_timer(). When `enabled` is false every
/// call degrades to the plain engine primitive with zero overhead.
class ResilientChannel {
 public:
  /// `stats` (optional) is an external aggregate additionally updated in
  /// place, so a driver can sum protocol activity across ranks.
  void configure(const ResilienceConfig& config, int self,
                 ChannelStats* stats = nullptr) {
    config_ = config;
    self_ = self;
    shared_stats_ = stats;
  }
  bool enabled() const { return config_.enabled; }

  /// Reliable point-to-point send. `idempotent` selects the receiver's
  /// dedup key: true — by tag (broadcast payloads; re-routed copies of the
  /// same logical payload are recognized); false — by (src, seq)
  /// (accumulating reduction contributions, where equal tags from distinct
  /// children are distinct contributions). `tree` (optional) enables
  /// subtree re-parenting around `dst` when it stalls: `dst` must be this
  /// rank's child in it.
  void send(sim::Context& ctx, int dst, std::int64_t tag, Count bytes,
            int comm_class, std::shared_ptr<const DenseMatrix> data,
            bool idempotent, const CommTree* tree = nullptr);

  /// Reliable trees::bcast_forward: forwards the payload to this rank's
  /// children in `tree`, tracked and idempotent, with re-parenting armed.
  void bcast_forward(sim::Context& ctx, const CommTree& tree, std::int64_t tag,
                     Count bytes, int comm_class,
                     const std::shared_ptr<const DenseMatrix>& payload);

  /// Gate for Rank::on_message. Returns true when `msg` is fresh
  /// application data the program should process; false when the protocol
  /// consumed it (an ack) or suppressed it (a duplicate). Acks every data
  /// copy before dedup, so retransmissions stop even for duplicates.
  bool on_message(sim::Context& ctx, const sim::Message& msg);

  /// Gate for Rank::on_timer. Returns true when the timer was a retry
  /// deadline owned by the channel (handled); false when it belongs to the
  /// program.
  bool on_timer(sim::Context& ctx, std::int64_t tag);

  const ChannelStats& stats() const { return stats_; }
  /// Tracked sends still awaiting an ack (0 after a completed run).
  std::size_t inflight() const { return inflight_.size(); }

 private:
  // Envelope: top 8 bits = kind, low 56 bits = per-sender seq (for an ack,
  // the seq being acked). env == 0 marks an untracked plain message.
  static constexpr std::int64_t kEnvData = 1;  ///< dedup by (src, seq)
  static constexpr std::int64_t kEnvIdem = 2;  ///< dedup by tag
  static constexpr std::int64_t kEnvAck = 3;
  static constexpr int kEnvKindShift = 56;
  static std::int64_t make_env(std::int64_t kind, std::int64_t seq) {
    return (kind << kEnvKindShift) | seq;
  }
  static std::int64_t env_kind(std::int64_t env) {
    return env >> kEnvKindShift;
  }
  static std::int64_t env_seq(std::int64_t env) {
    return env & ((std::int64_t{1} << kEnvKindShift) - 1);
  }

  struct Pending {
    int dst = -1;
    std::int64_t tag = 0;
    Count bytes = 0;
    int comm_class = 0;
    std::shared_ptr<const DenseMatrix> data;
    bool idempotent = false;
    const CommTree* tree = nullptr;  ///< for re-parenting; may be null
    sim::SimTime backoff = 0.0;      ///< current retry interval
    int attempts = 0;                ///< unacked retransmissions so far
    std::uint64_t timer_id = 0;
    bool rerouted = false;
  };

  void transmit(sim::Context& ctx, std::int64_t seq, Pending& entry);
  void count(Count ChannelStats::*field) {
    stats_.*field += 1;
    if (shared_stats_ != nullptr) shared_stats_->*field += 1;
  }

  ResilienceConfig config_;
  int self_ = -1;
  ChannelStats stats_;
  ChannelStats* shared_stats_ = nullptr;
  std::int64_t next_seq_ = 0;
  std::unordered_map<std::int64_t, Pending> inflight_;
  std::unordered_set<std::int64_t> seen_tags_;      ///< idempotent dedup
  std::unordered_set<std::uint64_t> seen_src_seq_;  ///< contribution dedup
};

}  // namespace psi::trees
