/// \file comm_tree.hpp
/// \brief Restricted-collective communication trees (the paper's §III).
///
/// A restricted collective involves the root plus an arbitrary subset of the
/// ranks of a processor row/column group. MPI cannot express this without
/// communicator churn (audikw_1 needs 20,061 distinct communicators on a
/// 24x24 grid), so PSelInv routes point-to-point messages along an explicit
/// tree:
///
///  * kFlat          — root sends to every receiver directly (PSelInv v0.7.3
///                     baseline; root sends p-1 messages).
///  * kBinary        — the ordered receiver list is split recursively in two
///                     halves, the first rank of each half forwarding to the
///                     rest; root sends 2 messages, critical path log2(p).
///                     Deterministic: low ranks of a group are always picked
///                     as internal nodes -> hot stripes across concurrent
///                     collectives (paper Fig. 5(b)).
///  * kShiftedBinary — THE PAPER'S CONTRIBUTION: a random circular shift is
///                     applied to the sorted receiver list before building
///                     the binary tree, so different collectives pick
///                     different internal nodes. The shift amount comes from
///                     a deterministic per-collective seed fixed during
///                     preprocessing (no runtime synchronization).
///  * kRandomPerm    — full random permutation of receivers (ablation; the
///                     paper argues and we confirm it loses network locality
///                     without balancing better than the circular shift).
///  * kHybrid        — flat below a participant-count threshold, shifted
///                     binary above (the paper's §IV-B closing suggestion:
///                     intra-node flat trees are cheap and cache friendly).
///  * kBinomial /    — the classic MPI broadcast shape (in round r the ranks
///    kShiftedBinomial that hold the data send to the rank 2^r positions
///                     away): log2(p) children at the root, depth log2(p).
///                     Included as an ablation beyond the paper — it shows
///                     the circular-shift heuristic composes with any tree
///                     shape, not just the paper's halving construction.
///
/// The same tree runs a broadcast (root -> leaves) or a reduction
/// (leaves -> root, reversing the edges).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "sparse/types.hpp"

namespace psi::trees {

enum class TreeScheme {
  kFlat,
  kBinary,
  kShiftedBinary,
  kRandomPerm,
  kHybrid,
  kBinomial,
  kShiftedBinomial,
};

const char* scheme_name(TreeScheme scheme);
TreeScheme parse_scheme(const std::string& name);

struct TreeOptions {
  TreeScheme scheme = TreeScheme::kShiftedBinary;
  /// Participant count at or below which kHybrid falls back to kFlat
  /// (roughly the ranks sharing a node).
  int hybrid_flat_threshold = 24;
  /// Global seed; combined with `collective_id` per tree.
  std::uint64_t seed = 0x5eed;
};

/// An explicit communication tree over a participant set.
class CommTree {
 public:
  /// Builds the tree for one collective. `receivers` is the list of
  /// receiving ranks (root excluded) in ascending order — the natural order
  /// of a processor row/column group, which most MPI implementations lay
  /// out physically close. `collective_id` makes the shifted scheme's
  /// rotation deterministic per collective.
  static CommTree build(const TreeOptions& options, int root,
                        std::vector<int> receivers, std::uint64_t collective_id);

  int root() const { return root_; }
  int participant_count() const { return static_cast<int>(parent_.size()); }

  /// Children of `rank` in the tree (empty for leaves). Children are stored
  /// flattened CSR-style, indexed by the rank's membership position: one
  /// contiguous array for the whole tree, two adjacent offset loads per
  /// lookup, and — for arithmetic-progression participant sets — no
  /// rank-to-index table at all. Trees are looked up once per simulated
  /// message, so their cache footprint is the hot constraint.
  std::span<const int> children_of(int rank) const {
    const int pos = position_of(rank);
    PSI_CHECK_MSG(pos >= 0, "rank " << rank << " is not a participant");
    const auto lo = static_cast<std::size_t>(
        children_offsets_[static_cast<std::size_t>(pos)]);
    const auto hi = static_cast<std::size_t>(
        children_offsets_[static_cast<std::size_t>(pos) + 1]);
    return {children_flat_.data() + lo, hi - lo};
  }
  /// Parent of `rank`; -1 for the root. `rank` must participate.
  int parent_of(int rank) const;
  bool participates(int rank) const { return position_of(rank) >= 0; }

  /// All participants (root first, then receivers in tree order).
  const std::vector<int>& participants() const { return order_; }

  /// Longest root-to-leaf path, in edges.
  int depth() const;
  /// Number of ranks with at least one child (the "forwarding" ranks the
  /// paper's heuristic aims to diversify).
  int internal_node_count() const;

  /// Flattened tree state for serialization (psi::store's on-disk plan
  /// format). Field-for-field image of the private representation; a tree
  /// round-trips bitwise through to_raw()/from_raw().
  struct Raw {
    int root = -1;
    std::vector<int> order;
    std::vector<int> parent;
    std::vector<int> children_offsets;
    std::vector<int> children_flat;
    std::vector<int> pos_to_order;
    int ap_first = 0;
    int ap_last = -1;
    int ap_stride = 0;
    std::vector<int> sorted_ranks;
  };
  Raw to_raw() const;
  /// Reassembles a tree from serialized parts. Validates internal size
  /// consistency (throws psi::Error on a malformed image) but trusts the
  /// caller for content integrity — the store's section checksums own that.
  static CommTree from_raw(Raw raw);

  /// Heap bytes retained by this tree (the serve plan cache's byte-budget
  /// accounting; excludes sizeof(*this), which the owner counts).
  std::size_t memory_bytes() const {
    return (order_.size() + parent_.size() + children_offsets_.size() +
            children_flat_.size() + pos_to_order_.size() +
            sorted_ranks_.size()) *
           sizeof(int);
  }

 private:
  int root_ = -1;
  std::vector<int> order_;             ///< participants, root first
  std::vector<int> parent_;            ///< aligned with order_
  std::vector<int> children_offsets_;  ///< CSR offsets, by membership position
  std::vector<int> children_flat_;     ///< concatenated child rank lists
  std::vector<int> pos_to_order_;      ///< membership position -> order_ index
  // A rank's membership position is its index in the SORTED participant
  // list. PSelInv participant sets are almost always an arithmetic
  // progression (a processor row is {pr*Pc + c}, stride 1; a column is
  // {r*Pc + pc}, stride Pc) — the scheme's rotation permutes order_, not
  // membership — so build() detects that case and position_of() becomes
  // pure arithmetic; otherwise `sorted_ranks_` backs an O(log n) binary
  // search. position_of() sits on every tree hop of the simulated replay,
  // which makes this the hottest lookup in the whole simulator.
  int ap_first_ = 0;
  int ap_last_ = -1;
  int ap_stride_ = 0;                  ///< 0 => fall back to sorted_ranks_
  std::vector<int> sorted_ranks_;      ///< empty for AP participant sets

  /// Membership position of `rank`; -1 if absent.
  int position_of(int rank) const {
    if (ap_stride_ > 0) {
      if (rank < ap_first_ || rank > ap_last_) return -1;
      const int off = rank - ap_first_;
      if (off % ap_stride_ != 0) return -1;
      return off / ap_stride_;
    }
    return position_of_slow(rank);
  }
  int position_of_slow(int rank) const;
};

}  // namespace psi::trees
