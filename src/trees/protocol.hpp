/// \file protocol.hpp
/// \brief Asynchronous broadcast/reduction protocol helpers over sim.
///
/// These are the "light-weight asynchronous broadcast and reduction
/// functions that can be dynamically created with very little overhead" the
/// paper calls for (§III): a CommTree plus a few bytes of per-collective
/// state, driven entirely by point-to-point messages.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "sim/engine.hpp"
#include "trees/comm_tree.hpp"

namespace psi::trees {

/// Broadcast step: called at the root when the payload becomes available,
/// and at every receiver when the payload message arrives. Forwards the
/// payload to this rank's children. (A leaf forwards nothing.)
void bcast_forward(sim::Context& ctx, const CommTree& tree, std::int64_t tag,
                   Count bytes, int comm_class,
                   const std::shared_ptr<const DenseMatrix>& payload);

/// Reduction state for one collective on one participating rank.
///
/// A rank's contribution tree-sums toward the root:
///  * add_local() publishes this rank's own contribution;
///  * add_child() / add_child_from() accepts a message from one child;
///  * once all children plus the local contribution have arrived, ready()
///    turns true; a non-root rank then sends accumulated() to parent_of().
/// In trace mode contributions carry no matrix; only arrival counting and
/// byte accounting happen.
///
/// Two modes:
///  * counting (legacy): constructed from a child count; contributions are
///    summed immediately in arrival order (cheapest, and bit-for-bit the
///    historical behavior).
///  * canonical: constructed from the child rank list; contributions are
///    parked per-child and folded in the fixed (local, then tree-child
///    order) sequence when complete. The sum is then bitwise independent of
///    arrival order — required for the resilient protocol's guarantee that
///    faults never change numeric results.
/// Both modes reject misuse loudly: a second add_local, a contribution from
/// an unknown or already-seen child, and any contribution after completion
/// all throw instead of corrupting the pending count.
class ReduceState {
 public:
  ReduceState() = default;
  /// Counting mode. `child_count` from the tree; every participant
  /// contributes locally too.
  explicit ReduceState(int child_count);
  /// Canonical mode. `child_ranks` is this rank's child list in tree order
  /// (the fold order, fixed at construction).
  explicit ReduceState(std::span<const int> child_ranks);

  /// Adds this rank's own contribution (numeric: a dense accumulator that is
  /// consumed). Returns true when the reduction just completed locally.
  bool add_local(std::shared_ptr<DenseMatrix> value = nullptr);
  /// Adds a child's message payload (counting mode only — the canonical
  /// mode needs to know which child). Returns true when complete.
  bool add_child(const std::shared_ptr<const DenseMatrix>& value);
  /// Adds the payload of the child `src`. In canonical mode the value is
  /// parked in src's slot; in counting mode this is add_child(). Returns
  /// true when complete.
  bool add_child_from(int src, std::shared_ptr<const DenseMatrix> value);

  bool ready() const { return started_ && pending_ == 0; }
  /// The summed contribution (may be null in trace mode). In canonical mode
  /// the fold happens on first call and requires ready().
  std::shared_ptr<DenseMatrix> accumulated();

  /// TEST-ONLY planted bug for psi::check's differential oracle: while
  /// enabled, canonical-mode states constructed afterwards fold their
  /// contributions in ARRIVAL order (the counting-mode behavior), silently
  /// voiding the bitwise schedule-independence guarantee. The check
  /// subsystem's fuzz campaign must catch this within a bounded number of
  /// trials (test_check.cpp asserts it). Never enable outside tests.
  static void test_set_fold_in_arrival_order(bool enabled);
  static bool test_fold_in_arrival_order();

 private:
  void note_arrival();
  void add_into_acc(const DenseMatrix& value);

  bool canonical_ = false;
  /// Snapshot of the test hook at construction (see above): park-and-fold
  /// is skipped and contributions sum eagerly in arrival order.
  bool fold_on_arrival_ = false;
  int pending_ = 0;
  bool started_ = false;
  bool local_added_ = false;
  int child_count_ = 0;
  int children_seen_ = 0;
  std::shared_ptr<DenseMatrix> acc_;

  // Canonical mode: parked contributions, folded on demand.
  std::vector<int> child_ranks_;
  std::vector<std::shared_ptr<const DenseMatrix>> child_values_;
  std::vector<bool> child_present_;
  std::shared_ptr<DenseMatrix> local_value_;
  bool folded_ = false;
};

}  // namespace psi::trees
