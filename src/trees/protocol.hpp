/// \file protocol.hpp
/// \brief Asynchronous broadcast/reduction protocol helpers over sim.
///
/// These are the "light-weight asynchronous broadcast and reduction
/// functions that can be dynamically created with very little overhead" the
/// paper calls for (§III): a CommTree plus a few bytes of per-collective
/// state, driven entirely by point-to-point messages.
#pragma once

#include <memory>

#include "sim/engine.hpp"
#include "trees/comm_tree.hpp"

namespace psi::trees {

/// Broadcast step: called at the root when the payload becomes available,
/// and at every receiver when the payload message arrives. Forwards the
/// payload to this rank's children. (A leaf forwards nothing.)
void bcast_forward(sim::Context& ctx, const CommTree& tree, std::int64_t tag,
                   Count bytes, int comm_class,
                   const std::shared_ptr<const DenseMatrix>& payload);

/// Reduction state for one collective on one participating rank.
///
/// A rank's contribution tree-sums toward the root:
///  * add_local() publishes this rank's own contribution;
///  * add_child() accepts a message from one child;
///  * once all children plus the local contribution have arrived, ready()
///    turns true; a non-root rank then sends accumulated() to parent_of().
/// In trace mode contributions carry no matrix; only arrival counting and
/// byte accounting happen.
class ReduceState {
 public:
  ReduceState() = default;
  /// `child_count` from the tree; every participant contributes locally too.
  explicit ReduceState(int child_count) : pending_(child_count + 1) {}

  /// Adds this rank's own contribution (numeric: a dense accumulator that is
  /// consumed). Returns true when the reduction just completed locally.
  bool add_local(std::shared_ptr<DenseMatrix> value = nullptr) {
    return absorb(std::move(value));
  }
  /// Adds a child's message payload. Returns true when complete.
  bool add_child(const std::shared_ptr<const DenseMatrix>& value) {
    std::shared_ptr<DenseMatrix> copy;
    if (value) copy = std::make_shared<DenseMatrix>(*value);
    return absorb(std::move(copy));
  }

  bool ready() const { return started_ && pending_ == 0; }
  /// The summed contribution (may be null in trace mode).
  std::shared_ptr<DenseMatrix> accumulated() { return acc_; }

 private:
  bool absorb(std::shared_ptr<DenseMatrix> value);

  int pending_ = 0;
  bool started_ = false;
  std::shared_ptr<DenseMatrix> acc_;
};

}  // namespace psi::trees
