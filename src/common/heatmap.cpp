#include "common/heatmap.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace psi {

HeatMap::HeatMap(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
  PSI_CHECK(rows > 0 && cols > 0);
}

double& HeatMap::at(std::size_t r, std::size_t c) {
  PSI_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double HeatMap::at(std::size_t r, std::size_t c) const {
  PSI_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double HeatMap::min_value() const {
  return *std::min_element(data_.begin(), data_.end());
}

double HeatMap::max_value() const {
  return *std::max_element(data_.begin(), data_.end());
}

std::string HeatMap::render() const { return render(min_value(), max_value()); }

std::string HeatMap::render(double lo, double hi) const {
  // 10-step shade ramp from cold to hot.
  static const char kRamp[] = " .:-=+*#%@";
  constexpr std::size_t kSteps = sizeof(kRamp) - 1;
  const double span = hi > lo ? hi - lo : 1.0;
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      double t = (at(r, c) - lo) / span;
      t = std::clamp(t, 0.0, 1.0);
      auto idx = static_cast<std::size_t>(t * static_cast<double>(kSteps - 1) + 0.5);
      os << kRamp[idx] << kRamp[idx];
    }
    os << '\n';
  }
  os << "scale: '" << kRamp[0] << "' = " << std::fixed << std::setprecision(2) << lo
     << "  ..  '" << kRamp[kSteps - 1] << "' = " << hi << '\n';
  return os.str();
}

std::string HeatMap::to_csv() const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c) os << ',';
      os << at(r, c);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace psi
