/// \file check.hpp
/// \brief Error handling primitives used across the psi library.
///
/// psi distinguishes two failure classes:
///  * programming errors (broken invariants) -> PSI_ASSERT, compiled out in
///    release builds when PSI_DISABLE_ASSERTS is defined;
///  * recoverable input/usage errors -> PSI_CHECK, always active, throws
///    psi::Error with a formatted message.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace psi {

/// Exception thrown for all recoverable library errors (bad input, I/O
/// failures, inconsistent configuration).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_error(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace psi

/// Always-on invariant check; throws psi::Error on failure.
#define PSI_CHECK(cond)                                                \
  do {                                                                 \
    if (!(cond))                                                       \
      ::psi::detail::throw_error(#cond, __FILE__, __LINE__, "");       \
  } while (0)

/// Always-on invariant check with a streamed message:
///   PSI_CHECK_MSG(n > 0, "matrix dimension must be positive, got " << n);
#define PSI_CHECK_MSG(cond, msg)                                       \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream psi_check_os_;                                \
      psi_check_os_ << msg;                                            \
      ::psi::detail::throw_error(#cond, __FILE__, __LINE__,            \
                                 psi_check_os_.str());                 \
    }                                                                  \
  } while (0)

/// Debug-only assertion for internal invariants (hot paths).
#ifdef PSI_DISABLE_ASSERTS
#define PSI_ASSERT(cond) ((void)0)
#else
#define PSI_ASSERT(cond) PSI_CHECK(cond)
#endif
