#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"

namespace psi {

namespace {

std::atomic<int>& level_storage() {
  static std::atomic<int> level = [] {
    if (const char* env = std::getenv("PSI_LOG_LEVEL")) {
      try {
        return static_cast<int>(parse_log_level(env));
      } catch (const Error&) {
        // Ignore malformed environment values; fall through to default.
      }
    }
    return static_cast<int>(LogLevel::kWarn);
  }();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
  }
  return "?????";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_storage().load()); }

void set_log_level(LogLevel level) { level_storage().store(static_cast<int>(level)); }

LogLevel parse_log_level(const std::string& name) {
  if (name == "error") return LogLevel::kError;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "info") return LogLevel::kInfo;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "trace") return LogLevel::kTrace;
  throw Error("unknown log level: " + name);
}

namespace detail {

void log_line(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[psi %s] %s\n", level_name(level), message.c_str());
}

}  // namespace detail
}  // namespace psi
