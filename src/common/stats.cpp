#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace psi {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

SampleStats::SampleStats(std::vector<double> values) : values_(std::move(values)) {}

void SampleStats::add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

void SampleStats::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double SampleStats::min() const {
  PSI_CHECK(!values_.empty());
  ensure_sorted();
  return sorted_.front();
}

double SampleStats::max() const {
  PSI_CHECK(!values_.empty());
  ensure_sorted();
  return sorted_.back();
}

double SampleStats::mean() const {
  PSI_CHECK(!values_.empty());
  return sum() / static_cast<double>(values_.size());
}

double SampleStats::sum() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double SampleStats::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double SampleStats::median() const { return quantile(0.5); }

double SampleStats::quantile(double q) const {
  PSI_CHECK(!values_.empty());
  PSI_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile must be in [0,1], got " << q);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

}  // namespace psi
