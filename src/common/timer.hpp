/// \file timer.hpp
/// \brief Wall-clock timer for harness self-reporting (host time, not the
/// simulated time — simulated time lives in psi::sim::Engine).
#pragma once

#include <chrono>

namespace psi {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace psi
