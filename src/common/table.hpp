/// \file table.hpp
/// \brief ASCII table formatting for the benchmark harnesses.
///
/// Every bench binary prints the same rows the paper's tables report;
/// TextTable keeps the formatting consistent across harnesses.
#pragma once

#include <string>
#include <vector>

namespace psi {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string fmt(double value, int precision = 3);
  static std::string fmt_int(long long value);

  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace psi
