/// \file stats.hpp
/// \brief Descriptive statistics used by the communication-volume analyses.
///
/// The paper reports min / max / median / standard deviation of per-rank
/// communication volumes (Tables I and II) and mean +/- stddev of repeated
/// timing runs (Figure 8 error bars). SampleStats collects a full sample and
/// provides those summaries; OnlineStats is a Welford accumulator for
/// streaming use inside the simulator.
#pragma once

#include <cstddef>
#include <vector>

namespace psi {

/// Streaming mean/variance (Welford). Suitable for per-rank counters that
/// are updated millions of times.
class OnlineStats {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch statistics over a retained sample; supports exact quantiles.
class SampleStats {
 public:
  SampleStats() = default;
  explicit SampleStats(std::vector<double> values);

  void add(double x);
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  /// Sample standard deviation (n-1); 0 for fewer than 2 samples.
  double stddev() const;
  double median() const;
  /// Linear-interpolated quantile, q in [0, 1].
  double quantile(double q) const;
  double sum() const;

  const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace psi
