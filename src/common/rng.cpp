#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace psi {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  // SplitMix-style avalanche of the pair; cheap and well distributed.
  std::uint64_t state = seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
  return splitmix64(state);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t state = seed;
  for (auto& word : s_) word = splitmix64(state);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  PSI_CHECK(bound > 0);
  // Rejection sampling on the top of the range to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

double Rng::uniform_double() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_double(double lo, double hi) {
  PSI_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform_double();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform_double();
  } while (u1 <= 0.0);
  const double u2 = uniform_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * normal());
}

}  // namespace psi
