/// \file histogram.hpp
/// \brief Fixed-bin histogram with ASCII rendering.
///
/// Used to regenerate Figure 4 of the paper (distribution of per-rank
/// Col-Bcast communication volume under the three tree schemes).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace psi {

class Histogram {
 public:
  /// Equal-width bins over [lo, hi]; values outside are clamped into the
  /// first/last bin so no sample is dropped.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  std::size_t max_count() const;

  /// Multi-line ASCII rendering (one row per bin) resembling the paper's
  /// per-scheme volume histograms. `width` is the bar width in characters.
  std::string render(std::size_t width = 50, const std::string& xlabel = "") const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace psi
