#include "common/parallel.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace psi::parallel {

namespace {
/// The pool whose worker loop the current thread is running (nullptr on
/// non-pool threads). Keyed per pool so that a worker of one pool may drive
/// a different pool (serve worker -> per-request compute pool) while
/// self-nested submission stays rejected.
thread_local const ThreadPool* current_worker_pool = nullptr;

/// Shared clamp-with-warning parser for positive-count knobs: unset ->
/// `fallback`; garbage/zero/negative -> 1 with a stderr warning naming the
/// variable (`noun` names the unit, e.g. "thread" or "partition"); values
/// above `max_count` clamp to the bound.
int parse_count_env(const char* name, const char* noun, const char* env,
                    int fallback, int max_count) {
  if (env == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(env, &end, 10);
  const bool parsed = end != env && *end == '\0' && errno == 0;
  if (!parsed || value < 1) {
    // A bad knob must not kill a long run mid-harness: warn and fall back
    // to sequential execution (which is always correct — output is
    // bit-identical for any thread or partition count).
    std::fprintf(stderr,
                 "# warning: %s='%s' is not a positive integer; running "
                 "with 1 %s\n",
                 name, env, noun);
    return 1;
  }
  return value > max_count ? max_count : static_cast<int>(value);
}
}  // namespace

int parse_bench_threads(const char* env) {
  const unsigned hw = std::thread::hardware_concurrency();
  const int fallback = hw > 0 ? static_cast<int>(hw) : 1;
  return parse_count_env("PSI_BENCH_THREADS", "thread", env, fallback,
                         kMaxBenchThreads);
}

int bench_threads() {
  return parse_bench_threads(std::getenv("PSI_BENCH_THREADS"));
}

int parse_compute_threads(const char* env) {
  // Default 1 (not hardware concurrency): a service that silently grabbed
  // every core per request would oversubscribe the moment two workers ran.
  return parse_count_env("PSI_SERVE_COMPUTE_THREADS", "thread", env,
                         /*fallback=*/1, kMaxComputeThreads);
}

int compute_threads() {
  return parse_compute_threads(std::getenv("PSI_SERVE_COMPUTE_THREADS"));
}

int parse_sim_partitions(const char* env) {
  // Default 1: partitioned simulation is opt-in (results are bitwise
  // identical either way; the knob only trades wall-clock for threads).
  return parse_count_env("PSI_SIM_PARTITIONS", "partition", env,
                         /*fallback=*/1, kMaxSimPartitions);
}

int sim_partitions() {
  return parse_sim_partitions(std::getenv("PSI_SIM_PARTITIONS"));
}

ThreadPool::ThreadPool(int threads) {
  PSI_CHECK(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  PSI_CHECK_MSG(current_worker_pool != this,
                "ThreadPool::submit called from a worker of the same pool: "
                "self-nested submission can deadlock a fixed-size pool and "
                "is rejected");
  PSI_CHECK(task != nullptr);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    PSI_CHECK_MSG(!stopping_, "ThreadPool::submit after shutdown began");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  wake_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    const std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  current_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--in_flight_ == 0) drained_.notify_all();
    }
  }
}

}  // namespace psi::parallel
