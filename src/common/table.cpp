#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace psi {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  PSI_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  PSI_CHECK_MSG(cells.size() == header_.size(),
                "row has " << cells.size() << " cells, header has " << header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::fmt_int(long long value) { return std::to_string(value); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << row[c]
         << " |";
    os << '\n';
  };
  auto emit_sep = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  emit_sep();
  emit_row(header_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  emit_sep();
  return os.str();
}

}  // namespace psi
