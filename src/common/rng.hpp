/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation.
///
/// All randomness in psi flows through Rng (xoshiro256**) so that every
/// experiment is reproducible from a single seed. The shifted binary tree's
/// circular-shift amounts are derived with hash_combine from (global seed,
/// collective id), mirroring the paper's "seed communicated during
/// preprocessing" so no runtime synchronization is needed.
#pragma once

#include <cstdint>
#include <vector>

namespace psi {

/// SplitMix64 step; also used to derive independent streams from a seed.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless mixing of a seed with a sequence of identifiers; gives each
/// collective its own deterministic random value.
std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value);

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform integer in [0, bound), bound > 0. Uses rejection sampling (no
  /// modulo bias).
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Lognormal with underlying normal(mu, sigma).
  double lognormal(double mu, double sigma);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace psi
