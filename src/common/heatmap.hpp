/// \file heatmap.hpp
/// \brief 2-D scalar field over the processor grid with ASCII rendering.
///
/// Regenerates the communication-volume heat maps of Figures 5, 6 and 7:
/// rows/columns are processor-grid rows/columns, the value is MB sent (or
/// received) by the rank at that grid position. ASCII shading makes the
/// paper's qualitative features (diagonal band for Flat-Tree, stripes for
/// Binary-Tree, uniform field for Shifted Binary-Tree) visible in a
/// terminal; to_csv() exports the exact field.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace psi {

class HeatMap {
 public:
  HeatMap(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  double min_value() const;
  double max_value() const;

  /// ASCII shading with a fixed ramp; optional shared [lo, hi] scale so two
  /// maps can be compared directly (the paper shares the colorbar between
  /// Figures 5(a) and 5(c)).
  std::string render() const;
  std::string render(double lo, double hi) const;

  /// CSV export (row per grid row).
  std::string to_csv() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

}  // namespace psi
