/// \file csv.hpp
/// \brief Tiny CSV writer used to export raw experiment data next to the
/// formatted tables, so results can be re-plotted outside the harness.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace psi {

class CsvWriter {
 public:
  /// Opens (truncates) `path`; throws psi::Error if the file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  void write_row(const std::vector<std::string>& cells);

 private:
  std::ofstream out_;
  std::size_t columns_;
};

/// Quote a cell if it contains a comma/quote/newline (RFC-4180 style).
std::string csv_escape(const std::string& cell);

}  // namespace psi
