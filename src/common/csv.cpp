#include "common/csv.hpp"

#include "common/check.hpp"

namespace psi {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), columns_(header.size()) {
  PSI_CHECK_MSG(out_.good(), "cannot open CSV file for writing: " << path);
  PSI_CHECK(columns_ > 0);
  write_row(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  PSI_CHECK_MSG(cells.size() == columns_,
                "CSV row has " << cells.size() << " cells, expected " << columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace psi
