#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace psi {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  PSI_CHECK_MSG(hi > lo, "histogram range must be non-empty: [" << lo << ", " << hi << "]");
  PSI_CHECK(bins > 0);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  double pos = (x - lo_) / width;
  auto bin = static_cast<std::ptrdiff_t>(std::floor(pos));
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_lo(std::size_t bin) const {
  PSI_CHECK(bin < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::size_t Histogram::max_count() const {
  return counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
}

std::string Histogram::render(std::size_t width, const std::string& xlabel) const {
  std::ostringstream os;
  const std::size_t peak = std::max<std::size_t>(max_count(), 1);
  if (!xlabel.empty()) os << xlabel << '\n';
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar = counts_[b] * width / peak;
    os << std::setw(9) << std::fixed << std::setprecision(2) << bin_lo(b) << " - "
       << std::setw(9) << bin_hi(b) << " |" << std::string(bar, '#')
       << ' ' << counts_[b] << '\n';
  }
  os << "total " << total_ << '\n';
  return os.str();
}

}  // namespace psi
