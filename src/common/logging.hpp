/// \file logging.hpp
/// \brief Minimal leveled logger.
///
/// The simulator and the experiment harnesses emit progress information
/// through this logger; the level is controlled programmatically or via the
/// PSI_LOG_LEVEL environment variable (error|warn|info|debug|trace).
#pragma once

#include <sstream>
#include <string>

namespace psi {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

/// Global log level. Defaults to kWarn, overridable with PSI_LOG_LEVEL.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse a level name ("info", "debug", ...); throws psi::Error on bad input.
LogLevel parse_log_level(const std::string& name);

namespace detail {
void log_line(LogLevel level, const std::string& message);
}

}  // namespace psi

#define PSI_LOG(level, expr)                                   \
  do {                                                         \
    if (static_cast<int>(level) <=                             \
        static_cast<int>(::psi::log_level())) {                \
      std::ostringstream psi_log_os_;                          \
      psi_log_os_ << expr;                                     \
      ::psi::detail::log_line(level, psi_log_os_.str());       \
    }                                                          \
  } while (0)

#define PSI_LOG_ERROR(expr) PSI_LOG(::psi::LogLevel::kError, expr)
#define PSI_LOG_WARN(expr) PSI_LOG(::psi::LogLevel::kWarn, expr)
#define PSI_LOG_INFO(expr) PSI_LOG(::psi::LogLevel::kInfo, expr)
#define PSI_LOG_DEBUG(expr) PSI_LOG(::psi::LogLevel::kDebug, expr)
#define PSI_LOG_TRACE(expr) PSI_LOG(::psi::LogLevel::kTrace, expr)
