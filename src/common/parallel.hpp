/// \file parallel.hpp
/// \brief Shared-memory worker pools: a fixed-size thread pool usable both
/// for replica parallelism (independent bench jobs) and as the substrate of
/// intra-request task graphs (numeric/task_graph.hpp, psi::serve).
///
/// Each sim::Engine remains strictly single-threaded and deterministic; the
/// pool runs *independent* engines (one per (scheme, P, repetition) bench
/// job) concurrently, or — via TaskGraph — the per-supernode tasks of one
/// numeric factorization/selected inversion. Determinism of bench output is
/// preserved by the callers: jobs write into pre-sized result slots keyed by
/// job index and all printing/CSV emission happens sequentially after the
/// join, so the output is bit-identical for any thread count. The numeric
/// task graphs add their own canonical-order reduction discipline on top
/// (see task_graph.hpp), so serve responses stay bitwise identical too.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace psi::parallel {

/// Upper bound on PSI_BENCH_THREADS (guards against typos like an extra
/// zero spawning thousands of workers).
inline constexpr int kMaxBenchThreads = 1024;

/// Upper bound on PSI_SERVE_COMPUTE_THREADS (a serve deployment pins a
/// bounded number of cores per request; a fat-fingered knob must not spawn
/// hundreds of threads per service worker).
inline constexpr int kMaxComputeThreads = 256;

/// Upper bound on PSI_SIM_PARTITIONS. The engine clamps further to the rank
/// count, so the bound only guards against typo-sized values spawning a
/// thousand partition threads.
inline constexpr int kMaxSimPartitions = 64;

/// Worker threads for the bench harnesses: PSI_BENCH_THREADS env var
/// (default: hardware concurrency, minimum 1). A value that is not a
/// positive integer (garbage, 0, negative) is clamped to 1 with a warning
/// on stderr — a bad knob degrades to sequential execution instead of
/// aborting a long harness run.
int bench_threads();

/// Parsing core of bench_threads(), exposed for testing: `env` is the raw
/// PSI_BENCH_THREADS value (null = unset).
int parse_bench_threads(const char* env);

/// Intra-request compute threads for the serving numeric phase:
/// PSI_SERVE_COMPUTE_THREADS env var (default: 1 — parallel numerics are
/// opt-in; a service should not oversubscribe its host silently). Same
/// clamp-with-warning discipline as bench_threads(): garbage/zero/negative
/// values degrade to 1 with a stderr warning, values above
/// kMaxComputeThreads clamp to the bound.
int compute_threads();

/// Parsing core of compute_threads(), exposed for testing: `env` is the raw
/// PSI_SERVE_COMPUTE_THREADS value (null = unset).
int parse_compute_threads(const char* env);

/// Event-queue partitions for the simulation engine: PSI_SIM_PARTITIONS env
/// var (default: 1 — partitioned execution is opt-in; output is bitwise
/// identical for any value, so the knob only trades wall-clock). Same
/// clamp-with-warning discipline as the thread knobs: garbage/zero/negative
/// values degrade to 1 with a stderr warning, values above
/// kMaxSimPartitions clamp to the bound.
int sim_partitions();

/// Parsing core of sim_partitions(), exposed for testing: `env` is the raw
/// PSI_SIM_PARTITIONS value (null = unset).
int parse_sim_partitions(const char* env);

/// Fixed-size pool of worker threads draining a FIFO task queue.
///
/// Tasks must be independent of each other *within one pool*: submitting to
/// a pool from inside one of its own tasks (self-nesting) is rejected with
/// psi::Error, since a task blocking on tasks it cannot steal would
/// deadlock a fixed-size pool. Submitting to a *different* pool is allowed:
/// a serve worker (a task of the service pool) drives its own dedicated
/// compute pool through numeric::TaskGraph, which is exactly the two-level
/// nesting the guard must permit.
class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(int threads);
  /// Joins all workers; pending tasks are still drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Throws psi::Error when called from a worker of THIS
  /// pool (self-nested submission); workers of other pools may submit here.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw, one
  /// of the captured exceptions is rethrown here (the others are dropped);
  /// the pool remains usable afterwards.
  void wait();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;      ///< workers: queue non-empty or stopping
  std::condition_variable drained_;   ///< waiters: no queued or running tasks
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::exception_ptr first_error_;
  std::size_t in_flight_ = 0;  ///< queued + currently-running tasks
  bool stopping_ = false;
};

/// Applies `fn(items[i])` to every element, spreading the calls over
/// `threads` pool workers (<= 0 means bench_threads()). With one thread — or
/// one item — runs inline on the caller, with no pool construction.
/// Rethrows the first exception a call raised after all calls finished.
template <typename Item, typename Fn>
void parallel_for_each(std::vector<Item>& items, Fn&& fn, int threads = 0) {
  if (threads <= 0) threads = bench_threads();
  if (items.empty()) return;
  if (threads == 1 || items.size() == 1) {
    for (Item& item : items) fn(item);
    return;
  }
  ThreadPool pool(std::min<int>(threads, static_cast<int>(items.size())));
  for (Item& item : items)
    pool.submit([&fn, &item] { fn(item); });
  pool.wait();
}

}  // namespace psi::parallel
