#include "symbolic/supernodes.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace psi {

void SupernodePartition::validate() const {
  PSI_CHECK(!starts.empty());
  PSI_CHECK(starts.front() == 0);
  for (std::size_t k = 0; k + 1 < starts.size(); ++k)
    PSI_CHECK_MSG(starts[k] < starts[k + 1], "empty supernode " << k);
  PSI_CHECK(static_cast<Int>(sup_of_col.size()) == starts.back());
  for (Int k = 0; k < count(); ++k)
    for (Int j = first_col(k); j < first_col(k) + size(k); ++j)
      PSI_CHECK(sup_of_col[static_cast<std::size_t>(j)] == k);
}

namespace {

SupernodePartition partition_from_starts(std::vector<Int> starts, Int n) {
  SupernodePartition part;
  part.starts = std::move(starts);
  part.sup_of_col.assign(static_cast<std::size_t>(n), 0);
  for (Int k = 0; k + 1 < static_cast<Int>(part.starts.size()); ++k)
    for (Int j = part.starts[static_cast<std::size_t>(k)];
         j < part.starts[static_cast<std::size_t>(k) + 1]; ++j)
      part.sup_of_col[static_cast<std::size_t>(j)] = k;
  return part;
}

}  // namespace

SupernodePartition scalar_supernodes(Int n) {
  std::vector<Int> starts(static_cast<std::size_t>(n) + 1);
  for (Int j = 0; j <= n; ++j) starts[static_cast<std::size_t>(j)] = j;
  return partition_from_starts(std::move(starts), n);
}

SupernodePartition uniform_supernodes(Int n, Int width) {
  PSI_CHECK(width > 0);
  std::vector<Int> starts;
  for (Int j = 0; j < n; j += width) starts.push_back(j);
  starts.push_back(n);
  return partition_from_starts(std::move(starts), n);
}

SupernodePartition build_supernodes(const SparsityPattern& pattern,
                                    const std::vector<Int>& etree_parent,
                                    const std::vector<Int>& counts,
                                    const SupernodeOptions& options) {
  const Int n = pattern.n;
  PSI_CHECK(static_cast<Int>(etree_parent.size()) == n);
  PSI_CHECK(static_cast<Int>(counts.size()) == n);
  const Int max_size = options.max_size > 0 ? options.max_size : n;
  PSI_CHECK(max_size >= 1);

  // Pass 1: fundamental supernodes — column j+1 continues the supernode of
  // column j iff j+1 is j's etree parent and struct(j) = struct(j+1) ∪ {j+1},
  // detected via counts(j) == counts(j+1) + 1.
  std::vector<Int> starts{0};
  for (Int j = 1; j < n; ++j) {
    const bool continues =
        etree_parent[static_cast<std::size_t>(j - 1)] == j &&
        counts[static_cast<std::size_t>(j - 1)] == counts[static_cast<std::size_t>(j)] + 1;
    if (!continues) starts.push_back(j);
  }
  starts.push_back(n);

  // Pass 2: relaxed amalgamation — merge a small supernode into the next one
  // when the next one begins at the small one's etree parent column (so the
  // merged range is an etree chain at block level).
  if (options.relax_small > 0) {
    std::vector<Int> merged{0};
    for (std::size_t k = 1; k + 1 <= starts.size() - 1; ++k) {
      const Int cur_start = merged.back();
      const Int cur_end = starts[k];          // candidate boundary
      const Int cur_size = cur_end - cur_start;
      const Int next_end = starts[k + 1];
      const Int last_col = cur_end - 1;
      const bool parent_adjacent =
          etree_parent[static_cast<std::size_t>(last_col)] == cur_end;
      const bool small_enough =
          (cur_end - cur_start) <= options.relax_small ||
          (next_end - cur_end) <= options.relax_small;
      if (parent_adjacent && small_enough &&
          (next_end - cur_start) <= max_size && cur_size < max_size) {
        continue;  // drop the boundary: merge
      }
      merged.push_back(cur_end);
    }
    merged.push_back(n);
    starts = std::move(merged);
  }

  // Pass 3: enforce the max-size cap.
  std::vector<Int> capped{0};
  for (std::size_t k = 1; k < starts.size(); ++k) {
    Int begin = capped.back();
    const Int end = starts[k];
    while (end - begin > max_size) {
      begin += max_size;
      capped.push_back(begin);
    }
    capped.push_back(end);
  }
  // Deduplicate (when starts[k] already equals the last pushed boundary).
  capped.erase(std::unique(capped.begin(), capped.end()), capped.end());

  SupernodePartition part = partition_from_starts(std::move(capped), n);
  part.validate();
  return part;
}

Count BlockStructure::block_count() const {
  Count total = part.count();  // diagonal blocks
  for (const auto& s : struct_of) total += static_cast<Count>(s.size());
  return total;
}

Count BlockStructure::factor_nnz_fullblock() const {
  Count total = 0;
  for (Int k = 0; k < part.count(); ++k) {
    const auto width = static_cast<Count>(part.size(k));
    total += width * width;  // dense diagonal block
    for (Int i : struct_of[static_cast<std::size_t>(k)])
      total += width * static_cast<Count>(part.size(i));
  }
  return total;
}

Count BlockStructure::lu_nnz_fullblock() const {
  Count diag = 0;
  for (Int k = 0; k < part.count(); ++k) {
    const auto width = static_cast<Count>(part.size(k));
    diag += width * width;
  }
  return 2 * factor_nnz_fullblock() - diag;
}

void BlockStructure::validate() const {
  part.validate();
  PSI_CHECK(static_cast<Int>(struct_of.size()) == part.count());
  PSI_CHECK(static_cast<Int>(parent.size()) == part.count());
  for (Int k = 0; k < part.count(); ++k) {
    const auto& s = struct_of[static_cast<std::size_t>(k)];
    for (std::size_t t = 0; t < s.size(); ++t) {
      PSI_CHECK_MSG(s[t] > k && s[t] < part.count(),
                    "block struct of " << k << " out of range");
      if (t) PSI_CHECK(s[t - 1] < s[t]);
    }
    const Int expected_parent = s.empty() ? -1 : s.front();
    PSI_CHECK(parent[static_cast<std::size_t>(k)] == expected_parent);
  }
}

BlockStructure block_symbolic_factorization(const SparsityPattern& pattern,
                                            SupernodePartition part) {
  PSI_CHECK(pattern.n == part.n());
  const Int nsup = part.count();

  BlockStructure bs;
  bs.part = std::move(part);
  bs.struct_of.assign(static_cast<std::size_t>(nsup), {});
  bs.parent.assign(static_cast<std::size_t>(nsup), -1);

  // Block rows of A below each supernode's diagonal block.
  std::vector<std::vector<Int>> a_blocks(static_cast<std::size_t>(nsup));
  {
    std::vector<Int> mark(static_cast<std::size_t>(nsup), -1);
    for (Int k = 0; k < nsup; ++k) {
      auto& rows = a_blocks[static_cast<std::size_t>(k)];
      for (Int j = bs.part.first_col(k); j < bs.part.first_col(k) + bs.part.size(k); ++j) {
        for (Int p = pattern.col_ptr[j]; p < pattern.col_ptr[j + 1]; ++p) {
          const Int bi = bs.part.sup_of_col[static_cast<std::size_t>(pattern.row_idx[p])];
          if (bi > k && mark[static_cast<std::size_t>(bi)] != k) {
            mark[static_cast<std::size_t>(bi)] = k;
            rows.push_back(bi);
          }
        }
      }
      std::sort(rows.begin(), rows.end());
    }
  }

  // Quotient symbolic factorization: struct(K) = A-blocks(K) ∪
  // (struct(child) \ {<= K}) for each supernodal-etree child, computed in
  // ascending order. Identical to the scalar algorithm on the block matrix.
  std::vector<std::vector<Int>> pending_children(static_cast<std::size_t>(nsup));
  std::vector<Int> merge_buffer;
  for (Int k = 0; k < nsup; ++k) {
    std::vector<Int> cur = std::move(a_blocks[static_cast<std::size_t>(k)]);
    for (Int c : pending_children[static_cast<std::size_t>(k)]) {
      auto& cs = bs.struct_of[static_cast<std::size_t>(c)];
      merge_buffer.clear();
      merge_buffer.reserve(cur.size() + cs.size());
      std::merge(cur.begin(), cur.end(),
                 std::upper_bound(cs.begin(), cs.end(), k), cs.end(),
                 std::back_inserter(merge_buffer));
      merge_buffer.erase(std::unique(merge_buffer.begin(), merge_buffer.end()),
                         merge_buffer.end());
      cur.swap(merge_buffer);
    }
    if (!cur.empty()) {
      bs.parent[static_cast<std::size_t>(k)] = cur.front();
      pending_children[static_cast<std::size_t>(cur.front())].push_back(k);
    }
    bs.struct_of[static_cast<std::size_t>(k)] = std::move(cur);
  }
  return bs;
}

}  // namespace psi
