/// \file etree.hpp
/// \brief Elimination tree machinery (Liu 1990, reference [19] of the paper).
///
/// The elimination tree drives everything downstream: postordering (so
/// supernodes are contiguous), column counts (supernode detection), and the
/// coarse-grained concurrency PSelInv exploits (independent subtrees can be
/// processed simultaneously).
#pragma once

#include <vector>

#include "sparse/sparse_matrix.hpp"
#include "sparse/types.hpp"

namespace psi {

/// Elimination tree of a structurally symmetric pattern.
/// parent[j] = etree parent of column j, or -1 for roots.
std::vector<Int> elimination_tree(const SparsityPattern& pattern);

/// Postorder of the forest given by `parent` (children visited before
/// parents, each subtree contiguous). Returns new_to_old order.
std::vector<Int> tree_postorder(const std::vector<Int>& parent);

/// True if `parent` is already postordered (every node's children precede it
/// and subtrees are contiguous intervals).
bool is_postordered(const std::vector<Int>& parent);

/// Column counts of the Cholesky/LU factor: cc[j] = |struct(L_{:,j})|
/// including the diagonal. Computed by merging child structures (work and
/// memory proportional to nnz(L)). Requires a postordered pattern.
std::vector<Int> column_counts(const SparsityPattern& pattern,
                               const std::vector<Int>& parent);

/// Scalar fill: nnz(L) including the diagonal (= sum of column counts).
Count factor_nnz(const std::vector<Int>& counts);

}  // namespace psi
