#include "symbolic/analysis.hpp"

#include <utility>

#include "common/check.hpp"
#include "common/logging.hpp"

namespace psi {

SymbolicAnalysis analyze(const SparseMatrix& a, const AnalysisOptions& options,
                         const std::vector<std::array<double, 3>>& coords) {
  PSI_CHECK_MSG(a.pattern.is_structurally_symmetric(),
                "analyze() requires a structurally symmetric matrix");

  // 1. Fill ordering on the original graph.
  const Permutation fill = compute_ordering(a.pattern, options.ordering, coords);
  SparseMatrix permuted = permute_symmetric(a, fill.old_to_new());

  // 2. Postorder the elimination tree so subtrees (and supernodes) are
  //    contiguous; compose into a single permutation.
  std::vector<Int> parent = elimination_tree(permuted.pattern);
  const std::vector<Int> post = tree_postorder(parent);  // new_to_old
  std::vector<Int> post_old_to_new(post.size());
  for (std::size_t k = 0; k < post.size(); ++k)
    post_old_to_new[static_cast<std::size_t>(post[k])] = static_cast<Int>(k);
  const Permutation postperm{std::move(post_old_to_new)};

  SymbolicAnalysis out;
  out.perm = postperm.compose_after(fill);
  out.matrix = permute_symmetric(a, out.perm.old_to_new());

  // 3. Elimination tree + counts on the final matrix.
  out.etree = elimination_tree(out.matrix.pattern);
  PSI_CHECK_MSG(is_postordered(out.etree),
                "internal: etree not postordered after postorder permutation");
  out.counts = column_counts(out.matrix.pattern, out.etree);

  // 4. Supernodes + block structure.
  SupernodePartition part =
      build_supernodes(out.matrix.pattern, out.etree, out.counts, options.supernodes);
  out.blocks = block_symbolic_factorization(out.matrix.pattern, std::move(part));

  PSI_LOG_INFO("analyze: n=" << a.n() << " nnz(A)=" << a.nnz()
               << " nsup=" << out.blocks.supernode_count()
               << " nnz(L) scalar=" << out.scalar_factor_nnz()
               << " fullblock=" << out.blocks.factor_nnz_fullblock());
  return out;
}

SymbolicAnalysis analyze(const GeneratedMatrix& gen, const AnalysisOptions& options) {
  return analyze(gen.matrix, options, gen.coords);
}

}  // namespace psi
