/// \file analysis.hpp
/// \brief One-call symbolic analysis pipeline.
///
/// Mirrors the pre-processing the paper delegates to SuperLU_DIST: fill
/// ordering, elimination-tree postordering, supernode detection, and the
/// supernodal block structure that PSelInv's communication plan is built
/// from.
#pragma once

#include <array>
#include <vector>

#include "ordering/ordering.hpp"
#include "ordering/permutation.hpp"
#include "sparse/generators.hpp"
#include "sparse/sparse_matrix.hpp"
#include "symbolic/etree.hpp"
#include "symbolic/supernodes.hpp"

namespace psi {

struct AnalysisOptions {
  OrderingOptions ordering;
  SupernodeOptions supernodes;
};

/// Result of the symbolic pipeline. `matrix` is the input permuted by
/// `perm` (fill ordering composed with the etree postorder); all downstream
/// indices (supernodes, blocks) refer to this permuted matrix.
struct SymbolicAnalysis {
  SparseMatrix matrix;        ///< P A P^T, postordered
  Permutation perm;           ///< old index -> new index
  std::vector<Int> etree;     ///< scalar elimination tree of `matrix`
  std::vector<Int> counts;    ///< scalar column counts of L
  BlockStructure blocks;      ///< supernodal block structure

  Count scalar_factor_nnz() const { return factor_nnz(counts); }
};

/// Runs the full pipeline on a structurally symmetric matrix. `coords` (one
/// per row) are required only for geometric dissection.
SymbolicAnalysis analyze(const SparseMatrix& a, const AnalysisOptions& options,
                         const std::vector<std::array<double, 3>>& coords = {});

/// Convenience overload for generated matrices.
SymbolicAnalysis analyze(const GeneratedMatrix& gen, const AnalysisOptions& options);

}  // namespace psi
