/// \file supernodes.hpp
/// \brief Supernode partition and supernodal (block) symbolic factorization.
///
/// PSelInv organizes the factor as supernodal block columns mapped
/// block-cyclically onto a 2-D processor grid (paper §II-B, Fig. 1). We use
/// *full-block* semantics: once the contiguous column partition is fixed,
/// the factor's block pattern is the symbolic factorization of the quotient
/// (block) matrix, and every nonzero block (I, K) is stored as a dense
/// cols(I) x cols(K) block. This is exactly the regime of the paper's DG
/// matrices and slightly over-approximates the scalar fill of the FEM
/// matrices; it keeps the scalar/block structures consistent under relaxed
/// amalgamation (padded entries are exact zeros of an augmented pattern, so
/// the selected inversion stays numerically exact on all requested entries).
#pragma once

#include <vector>

#include "sparse/sparse_matrix.hpp"
#include "sparse/types.hpp"

namespace psi {

/// Contiguous partition of the columns {0..n-1} into supernodes.
struct SupernodePartition {
  std::vector<Int> starts;      ///< size count()+1; supernode K = [starts[K], starts[K+1])
  std::vector<Int> sup_of_col;  ///< size n

  Int count() const { return static_cast<Int>(starts.size()) - 1; }
  Int n() const { return starts.empty() ? 0 : starts.back(); }
  Int first_col(Int k) const { return starts[static_cast<std::size_t>(k)]; }
  Int size(Int k) const {
    return starts[static_cast<std::size_t>(k) + 1] - starts[static_cast<std::size_t>(k)];
  }
  void validate() const;
};

struct SupernodeOptions {
  /// Hard cap on supernode width (0 = unlimited).
  Int max_size = 96;
  /// A supernode of width <= relax_small is merged into its parent when the
  /// combined width stays within max_size and the parent starts right after
  /// it (relaxed amalgamation).
  Int relax_small = 8;
};

/// Fundamental supernodes from the elimination tree and column counts
/// (pattern must be postordered), followed by relaxed amalgamation and the
/// max-size split. parent/counts must come from the same pattern.
SupernodePartition build_supernodes(const SparsityPattern& pattern,
                                    const std::vector<Int>& etree_parent,
                                    const std::vector<Int>& counts,
                                    const SupernodeOptions& options);

/// Trivial partition: every column its own supernode (tests/baselines).
SupernodePartition scalar_supernodes(Int n);

/// Fixed-width partition (used by the DG matrices whose natural element
/// blocks are known a priori, and by tests).
SupernodePartition uniform_supernodes(Int n, Int width);

/// Supernodal block structure of the factor: the quotient-graph symbolic
/// factorization over a supernode partition.
struct BlockStructure {
  SupernodePartition part;
  /// struct_of[K]: ascending list of supernodes I > K such that block (I, K)
  /// of L (and by symmetric pattern, block (K, I) of U) is nonzero. This is
  /// the paper's ancestor index set C(K) at block granularity.
  std::vector<std::vector<Int>> struct_of;
  /// Supernodal elimination-tree parent (-1 for roots); equals the smallest
  /// element of struct_of[K].
  std::vector<Int> parent;

  Int supernode_count() const { return part.count(); }

  /// Total nonzero blocks of L including diagonal blocks.
  Count block_count() const;
  /// Scalar nonzeros of the full-block L factor, diagonal blocks included
  /// (lower triangle); the U factor mirrors this by symmetry.
  Count factor_nnz_fullblock() const;
  /// Scalar nonzeros of L+U (both triangles, diagonal counted once).
  Count lu_nnz_fullblock() const;

  void validate() const;
};

/// Quotient symbolic factorization of a (postordered, structurally
/// symmetric) pattern over `part`.
BlockStructure block_symbolic_factorization(const SparsityPattern& pattern,
                                            SupernodePartition part);

}  // namespace psi
