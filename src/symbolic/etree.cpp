#include "symbolic/etree.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"

namespace psi {

std::vector<Int> elimination_tree(const SparsityPattern& pattern) {
  const Int n = pattern.n;
  std::vector<Int> parent(static_cast<std::size_t>(n), -1);
  std::vector<Int> ancestor(static_cast<std::size_t>(n), -1);  // path compression
  for (Int j = 0; j < n; ++j) {
    for (Int p = pattern.col_ptr[j]; p < pattern.col_ptr[j + 1]; ++p) {
      Int i = pattern.row_idx[p];
      if (i >= j) continue;  // lower triangle of column j == row j entries i<j
      // Walk up from i to the current root, compressing to j.
      while (i != -1 && i < j) {
        const Int next = ancestor[static_cast<std::size_t>(i)];
        ancestor[static_cast<std::size_t>(i)] = j;
        if (next == -1) {
          parent[static_cast<std::size_t>(i)] = j;
          break;
        }
        i = next;
      }
    }
  }
  return parent;
}

std::vector<Int> tree_postorder(const std::vector<Int>& parent) {
  const auto n = static_cast<Int>(parent.size());
  // Build child lists (in ascending order so the postorder is deterministic).
  std::vector<Int> head(static_cast<std::size_t>(n), -1);
  std::vector<Int> next(static_cast<std::size_t>(n), -1);
  std::vector<Int> roots;
  for (Int j = n - 1; j >= 0; --j) {
    const Int p = parent[static_cast<std::size_t>(j)];
    if (p < 0) {
      roots.push_back(j);
    } else {
      next[static_cast<std::size_t>(j)] = head[static_cast<std::size_t>(p)];
      head[static_cast<std::size_t>(p)] = j;
    }
  }
  std::sort(roots.begin(), roots.end(), std::greater<Int>());

  std::vector<Int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<Int> stack;
  std::vector<Int> child_iter(head);  // next unvisited child per node
  for (Int root : roots) {
    stack.push_back(root);
    while (!stack.empty()) {
      const Int v = stack.back();
      const Int c = child_iter[static_cast<std::size_t>(v)];
      if (c != -1) {
        child_iter[static_cast<std::size_t>(v)] = next[static_cast<std::size_t>(c)];
        stack.push_back(c);
      } else {
        order.push_back(v);
        stack.pop_back();
      }
    }
  }
  PSI_CHECK(static_cast<Int>(order.size()) == n);
  return order;
}

bool is_postordered(const std::vector<Int>& parent) {
  const auto n = static_cast<Int>(parent.size());
  // A forest is postordered iff every subtree occupies the contiguous index
  // interval [root - size + 1, root]. Accumulate subtree sizes and minimum
  // descendants bottom-up (valid because we also require parent > child).
  std::vector<Int> first_descendant(static_cast<std::size_t>(n));
  std::iota(first_descendant.begin(), first_descendant.end(), 0);
  std::vector<Int> subtree_size(static_cast<std::size_t>(n), 1);
  for (Int j = 0; j < n; ++j) {
    const Int p = parent[static_cast<std::size_t>(j)];
    if (p < 0) continue;
    if (p <= j) return false;
    first_descendant[static_cast<std::size_t>(p)] =
        std::min(first_descendant[static_cast<std::size_t>(p)],
                 first_descendant[static_cast<std::size_t>(j)]);
    subtree_size[static_cast<std::size_t>(p)] += subtree_size[static_cast<std::size_t>(j)];
  }
  for (Int j = 0; j < n; ++j)
    if (first_descendant[static_cast<std::size_t>(j)] !=
        j - subtree_size[static_cast<std::size_t>(j)] + 1)
      return false;
  return true;
}

std::vector<Int> column_counts(const SparsityPattern& pattern,
                               const std::vector<Int>& parent) {
  const Int n = pattern.n;
  PSI_CHECK(static_cast<Int>(parent.size()) == n);
  // struct_of[j]: row indices of L_{:,j} strictly below j; freed once merged
  // into the parent.
  std::vector<std::vector<Int>> struct_of(static_cast<std::size_t>(n));
  std::vector<std::vector<Int>> pending_children(static_cast<std::size_t>(n));
  std::vector<Int> counts(static_cast<std::size_t>(n), 0);
  std::vector<Int> merge_buffer;

  for (Int j = 0; j < n; ++j) {
    // Start from the strictly-lower entries of A's column j.
    std::vector<Int> cur;
    for (Int p = pattern.col_ptr[j]; p < pattern.col_ptr[j + 1]; ++p)
      if (pattern.row_idx[p] > j) cur.push_back(pattern.row_idx[p]);
    // cur is sorted (pattern invariant). Merge child structures.
    for (Int c : pending_children[static_cast<std::size_t>(j)]) {
      auto& cs = struct_of[static_cast<std::size_t>(c)];
      // Drop entries <= j (only j itself can remain; children's structs hold
      // rows > c, and parent(c) == j means j = min row of struct(c)).
      merge_buffer.clear();
      merge_buffer.reserve(cur.size() + cs.size());
      std::merge(cur.begin(), cur.end(),
                 std::lower_bound(cs.begin(), cs.end(), j + 1), cs.end(),
                 std::back_inserter(merge_buffer));
      merge_buffer.erase(std::unique(merge_buffer.begin(), merge_buffer.end()),
                         merge_buffer.end());
      cur.swap(merge_buffer);
      cs.clear();
      cs.shrink_to_fit();
    }
    counts[static_cast<std::size_t>(j)] = static_cast<Int>(cur.size()) + 1;  // + diagonal
    const Int p = parent[static_cast<std::size_t>(j)];
    if (p >= 0) {
      PSI_CHECK_MSG(p > j, "column_counts requires a postordered pattern");
      pending_children[static_cast<std::size_t>(p)].push_back(j);
      struct_of[static_cast<std::size_t>(j)] = std::move(cur);
    }
  }
  return counts;
}

Count factor_nnz(const std::vector<Int>& counts) {
  Count total = 0;
  for (Int c : counts) total += c;
  return total;
}

}  // namespace psi
