#include "dist/process_grid.hpp"

#include <limits>

#include "common/check.hpp"

namespace psi::dist {

ProcessGrid::ProcessGrid(int prows, int pcols) : prows_(prows), pcols_(pcols) {
  PSI_CHECK_MSG(prows > 0 && pcols > 0,
                "process grid must be positive, got " << prows << "x" << pcols);
  PSI_CHECK_MSG(prows <= std::numeric_limits<int>::max() / pcols,
                "process grid " << prows << "x" << pcols
                                << " overflows the rank count");
}

int ProcessGrid::rank_of(int prow, int pcol) const {
  PSI_CHECK(prow >= 0 && prow < prows_ && pcol >= 0 && pcol < pcols_);
  return prow * pcols_ + pcol;
}

ProcessGrid validated_grid(int prows, int pcols, int expected_ranks) {
  PSI_CHECK_MSG(prows > 0 && pcols > 0,
                "process grid dimensions must be positive, got "
                    << prows << "x" << pcols);
  PSI_CHECK_MSG(prows <= std::numeric_limits<int>::max() / pcols,
                "process grid " << prows << "x" << pcols
                                << " overflows the rank count");
  if (expected_ranks >= 0)
    PSI_CHECK_MSG(prows * pcols == expected_ranks,
                  "process grid " << prows << "x" << pcols << " = "
                                  << prows * pcols << " ranks, but "
                                  << expected_ranks << " were requested");
  return ProcessGrid(prows, pcols);
}

}  // namespace psi::dist
