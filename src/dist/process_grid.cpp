#include "dist/process_grid.hpp"

#include "common/check.hpp"

namespace psi::dist {

ProcessGrid::ProcessGrid(int prows, int pcols) : prows_(prows), pcols_(pcols) {
  PSI_CHECK_MSG(prows > 0 && pcols > 0,
                "process grid must be positive, got " << prows << "x" << pcols);
}

int ProcessGrid::rank_of(int prow, int pcol) const {
  PSI_CHECK(prow >= 0 && prow < prows_ && pcol >= 0 && pcol < pcols_);
  return prow * pcols_ + pcol;
}

}  // namespace psi::dist
