/// \file process_grid.hpp
/// \brief Virtual 2-D processor grid and the supernodal block-cyclic
/// distribution (paper §II-B, Figure 1).
///
/// Ranks are arranged row-major on a Pr x Pc grid (SuperLU_DIST convention):
/// rank = prow * Pc + pcol. Block (I, K) of the factor / selected inverse is
/// owned by rank (I mod Pr, K mod Pc). A "processor column" {(r, c) : r} is
/// the group inside which Col-Bcast runs; a "processor row" {(r, c) : c}
/// hosts Row-Reduce.
#pragma once

#include "sparse/types.hpp"

namespace psi::dist {

class ProcessGrid {
 public:
  /// Throws psi::Error for non-positive dimensions or a Pr*Pc product that
  /// overflows int.
  ProcessGrid(int prows, int pcols);

  int prows() const { return prows_; }
  int pcols() const { return pcols_; }
  int size() const { return prows_ * pcols_; }

  int rank_of(int prow, int pcol) const;
  int row_of(int rank) const { return rank / pcols_; }
  int col_of(int rank) const { return rank % pcols_; }

 private:
  int prows_;
  int pcols_;
};

/// Validated construction for user-supplied grid arguments (driver flags,
/// psi_serve requests, bench CLIs): rejects non-positive dimensions and a
/// Pr*Pc mismatch against an expected rank count with a message naming the
/// offending values — instead of a bare assert (or worse, an inscrutable
/// failure deep in plan construction). `expected_ranks < 0` skips the
/// product check.
ProcessGrid validated_grid(int prows, int pcols, int expected_ranks = -1);

/// Supernodal 2-D block-cyclic mapping.
class BlockCyclicMap {
 public:
  explicit BlockCyclicMap(const ProcessGrid& grid) : grid_(&grid) {}

  const ProcessGrid& grid() const { return *grid_; }

  /// Processor-grid row owning block row I.
  int prow_of(Int block_row) const {
    return static_cast<int>(block_row % grid_->prows());
  }
  /// Processor-grid column owning block column K.
  int pcol_of(Int block_col) const {
    return static_cast<int>(block_col % grid_->pcols());
  }
  /// Rank owning block (I, K).
  int owner(Int block_row, Int block_col) const {
    return grid_->rank_of(prow_of(block_row), pcol_of(block_col));
  }

 private:
  const ProcessGrid* grid_;
};

}  // namespace psi::dist
