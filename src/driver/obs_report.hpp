/// \file obs_report.hpp
/// \brief Driver entry point of the observability layer: runs the psi::obs
/// post-run analyzers over a recorded run, renders the results for humans,
/// and folds run aggregates into a metrics registry for the machine-readable
/// bench summaries (--json).
#pragma once

#include <string>

#include "obs/analysis.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "pselinv/engine.hpp"
#include "sim/machine.hpp"

namespace psi::driver {

/// Everything the post-run analyzers produce for one recording.
struct ObsAnalysis {
  obs::CriticalPath path;
  obs::ContentionReport contention;
};

/// Extracts the critical path (per-comm-class attribution) and the per-NIC /
/// per-tier contention report from `recorder`, using `config`'s topology.
ObsAnalysis analyze_recording(const obs::Recorder& recorder,
                              const sim::MachineConfig& config);

/// Multi-line breakdown of the binding chain: category shares, hop counts,
/// and per-collective communication time on the path.
std::string render_critical_path(const obs::CriticalPath& path);

/// Multi-line contention summary: per-tier traffic split into transfer /
/// latency / queueing, plus the `top_ranks` busiest send NICs.
std::string render_contention(const obs::ContentionReport& report,
                              int top_ranks = 5);

/// Folds a finished run's aggregates into `registry` under
/// {bench, scheme, p} labels: makespan, engine event totals, per-collective
/// traffic volume, and the total / max per-rank send volume (load balance).
void record_run_metrics(obs::MetricsRegistry& registry,
                        const std::string& bench, const std::string& scheme,
                        int p, const pselinv::RunResult& result);

}  // namespace psi::driver
