/// \file timeline.hpp
/// \brief Communication-timeline analysis of a simulator trace.
///
/// Buckets the delivered messages of a traced run by time and communication
/// class, producing the "what was on the wire when" view used to inspect
/// phase overlap and hot periods (an observability aid beyond the paper's
/// aggregate numbers).
#pragma once

#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace psi::driver {

class CommTimeline {
 public:
  /// Buckets `trace` (delivery times in [0, makespan]) into `buckets`
  /// equal-width intervals per communication class.
  CommTimeline(const std::vector<sim::TraceEvent>& trace, double makespan,
               std::size_t buckets, int comm_classes);

  std::size_t buckets() const { return buckets_; }
  int comm_classes() const { return comm_classes_; }
  double bucket_seconds() const { return bucket_seconds_; }

  /// Bytes delivered in `bucket` for `comm_class`.
  Count bytes_at(std::size_t bucket, int comm_class) const;
  Count messages_at(std::size_t bucket, int comm_class) const;

  /// ASCII rendering: one row per class, one column per bucket, shading by
  /// bytes relative to the busiest (class, bucket) cell. `names(c)` labels
  /// the rows.
  std::string render(const char* (*names)(int)) const;

  /// CSV export: bucket_start_s, class, bytes, messages.
  std::string to_csv(const char* (*names)(int)) const;

 private:
  std::size_t index(std::size_t bucket, int comm_class) const;

  std::size_t buckets_;
  int comm_classes_;
  double bucket_seconds_;
  std::vector<Count> bytes_;
  std::vector<Count> messages_;
};

}  // namespace psi::driver
