/// \file experiment.hpp
/// \brief Shared experiment scaffolding for the bench harnesses and the
/// examples: default analysis options, machine presets, grid shapes, and
/// rendering of per-rank volume fields as heat maps.
#pragma once

#include <string>
#include <vector>

#include "common/heatmap.hpp"
#include "dist/process_grid.hpp"
#include "pselinv/plan.hpp"
#include "pselinv/volume_analysis.hpp"
#include "sim/machine.hpp"
#include "symbolic/analysis.hpp"
#include "trees/comm_tree.hpp"

namespace psi::driver {

/// Analysis defaults used by every experiment: geometric nested dissection
/// (the generators provide coordinates) and SuperLU-like supernode sizing.
AnalysisOptions default_analysis_options();

/// Edison-like machine; `jitter_sigma` > 0 adds network inhomogeneity and
/// `run_seed` selects a placement (vary per repetition for error bars).
sim::MachineConfig edison_config(double jitter_sigma = 0.0,
                                 std::uint64_t run_seed = 0);

/// Edison-like machine calibrated for the scaled-down timing experiments
/// (Figures 8-9): bandwidths and flop rate scaled by the analog matrices'
/// payload deficit so the computation:communication balance matches the
/// paper's full-size runs (see EXPERIMENTS.md, "Machine calibration").
sim::MachineConfig timing_machine(double jitter_sigma = 0.25,
                                  std::uint64_t run_seed = 0);

/// Near-square grid with pr * pc == p and pr >= pc (the paper uses square
/// counts: 64 = 8x8, ..., 12100 = 110x110).
void square_grid(int p, int& pr, int& pc);

/// Tree options for a scheme with the experiment's deterministic seed.
trees::TreeOptions tree_options_for(trees::TreeScheme scheme,
                                    std::uint64_t seed = 0x2016);

/// The three schemes of the paper plus the two extensions, in display order.
std::vector<trees::TreeScheme> paper_schemes();
std::vector<trees::TreeScheme> all_schemes();

/// Renders a per-rank scalar field (indexed by rank) as a Pr x Pc heat map.
HeatMap rank_field_to_heatmap(const std::vector<double>& per_rank,
                              const dist::ProcessGrid& grid);

/// Scale factor for bench workloads: PSI_BENCH_SCALE env var (default 1.0).
/// Lets CI run the full harness quickly (e.g. PSI_BENCH_SCALE=0.5).
double bench_scale();

/// Repetitions for timing error bars: PSI_BENCH_REPS (default 3).
int bench_reps();

}  // namespace psi::driver
