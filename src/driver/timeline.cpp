#include "driver/timeline.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace psi::driver {

CommTimeline::CommTimeline(const std::vector<sim::TraceEvent>& trace,
                           double makespan, std::size_t buckets,
                           int comm_classes)
    : buckets_(buckets),
      comm_classes_(comm_classes),
      bucket_seconds_(makespan > 0 ? makespan / static_cast<double>(buckets) : 1.0) {
  PSI_CHECK(buckets > 0);
  PSI_CHECK(comm_classes > 0);
  bytes_.assign(buckets_ * static_cast<std::size_t>(comm_classes_), 0);
  messages_.assign(bytes_.size(), 0);
  for (const sim::TraceEvent& event : trace) {
    if (event.comm_class < 0 || event.comm_class >= comm_classes_) continue;
    auto bucket = static_cast<std::size_t>(event.time / bucket_seconds_);
    bucket = std::min(bucket, buckets_ - 1);
    bytes_[index(bucket, event.comm_class)] += event.bytes;
    messages_[index(bucket, event.comm_class)] += 1;
  }
}

std::size_t CommTimeline::index(std::size_t bucket, int comm_class) const {
  return bucket * static_cast<std::size_t>(comm_classes_) +
         static_cast<std::size_t>(comm_class);
}

Count CommTimeline::bytes_at(std::size_t bucket, int comm_class) const {
  PSI_CHECK(bucket < buckets_ && comm_class >= 0 && comm_class < comm_classes_);
  return bytes_[index(bucket, comm_class)];
}

Count CommTimeline::messages_at(std::size_t bucket, int comm_class) const {
  PSI_CHECK(bucket < buckets_ && comm_class >= 0 && comm_class < comm_classes_);
  return messages_[index(bucket, comm_class)];
}

std::string CommTimeline::render(const char* (*names)(int)) const {
  static const char kRamp[] = " .:-=+*#%@";
  constexpr int kSteps = sizeof(kRamp) - 1;
  const Count peak = std::max<Count>(
      1, *std::max_element(bytes_.begin(), bytes_.end()));
  std::ostringstream os;
  for (int c = 0; c < comm_classes_; ++c) {
    Count total = 0;
    for (std::size_t b = 0; b < buckets_; ++b) total += bytes_at(b, c);
    if (total == 0) continue;  // silent classes skipped
    os << std::left << std::setw(16) << names(c) << " |";
    for (std::size_t b = 0; b < buckets_; ++b) {
      const double t =
          static_cast<double>(bytes_at(b, c)) / static_cast<double>(peak);
      const auto idx =
          static_cast<std::size_t>(t * static_cast<double>(kSteps - 1) + 0.5);
      os << kRamp[idx];
    }
    os << "| " << std::fixed << std::setprecision(2)
       << static_cast<double>(total) / (1024.0 * 1024.0) << " MB\n";
  }
  os << std::left << std::setw(16) << "(time)" << " |0"
     << std::string(buckets_ > 2 ? buckets_ - 2 : 0, '.') << ">| "
     << std::setprecision(4) << bucket_seconds_ * static_cast<double>(buckets_)
     << " s\n";
  return os.str();
}

std::string CommTimeline::to_csv(const char* (*names)(int)) const {
  std::ostringstream os;
  os << "bucket_start_s,class,bytes,messages\n";
  for (std::size_t b = 0; b < buckets_; ++b)
    for (int c = 0; c < comm_classes_; ++c)
      os << bucket_seconds_ * static_cast<double>(b) << ',' << names(c) << ','
         << bytes_at(b, c) << ',' << messages_at(b, c) << '\n';
  return os.str();
}

}  // namespace psi::driver
