#include "driver/experiment.hpp"

#include <cmath>
#include <cstdlib>

#include "common/check.hpp"

namespace psi::driver {

AnalysisOptions default_analysis_options() {
  AnalysisOptions opt;
  opt.ordering.method = OrderingMethod::kGeometricDissection;
  opt.ordering.dissection_leaf_size = 48;
  opt.supernodes.max_size = 48;
  opt.supernodes.relax_small = 8;
  return opt;
}

sim::MachineConfig edison_config(double jitter_sigma, std::uint64_t run_seed) {
  sim::MachineConfig config;  // defaults are already Edison-like
  config.jitter_sigma = jitter_sigma;
  config.jitter_seed = run_seed;
  return config;
}

sim::MachineConfig timing_machine(double jitter_sigma, std::uint64_t run_seed) {
  sim::MachineConfig config = edison_config(jitter_sigma, run_seed);
  // Traffic-equivalence calibration for the timing experiments (Figs 8-9):
  // the laptop-scale analog matrices carry roughly 64x less data per factor
  // block than the paper's full-size matrices (n is 20-40x smaller and block
  // extents are narrower), while the *pattern* of collectives is preserved.
  // Scaling the bandwidths down by the payload deficit restores the
  // per-collective transfer costs of the original runs; the effective flop
  // rate is lowered likewise so the computation:communication balance at
  // small P matches the paper's reported 73%:27% regime. Latencies and
  // topology are untouched. See EXPERIMENTS.md "Machine calibration".
  config.bw_intranode /= 64.0;
  config.bw_intragroup /= 64.0;
  config.bw_intergroup /= 64.0;
  config.flop_rate = 2e9;
  return config;
}

void square_grid(int p, int& pr, int& pc) {
  PSI_CHECK_MSG(p > 0, "processor count must be positive, got " << p);
  pr = static_cast<int>(std::sqrt(static_cast<double>(p)));
  while (pr > 1 && p % pr != 0) --pr;
  pc = p / pr;
  if (pr < pc) std::swap(pr, pc);
}

trees::TreeOptions tree_options_for(trees::TreeScheme scheme, std::uint64_t seed) {
  trees::TreeOptions opt;
  opt.scheme = scheme;
  opt.seed = seed;
  return opt;
}

std::vector<trees::TreeScheme> paper_schemes() {
  return {trees::TreeScheme::kFlat, trees::TreeScheme::kBinary,
          trees::TreeScheme::kShiftedBinary};
}

std::vector<trees::TreeScheme> all_schemes() {
  return {trees::TreeScheme::kFlat,          trees::TreeScheme::kBinary,
          trees::TreeScheme::kShiftedBinary, trees::TreeScheme::kRandomPerm,
          trees::TreeScheme::kHybrid,        trees::TreeScheme::kBinomial,
          trees::TreeScheme::kShiftedBinomial};
}

HeatMap rank_field_to_heatmap(const std::vector<double>& per_rank,
                              const dist::ProcessGrid& grid) {
  PSI_CHECK(static_cast<int>(per_rank.size()) == grid.size());
  HeatMap map(static_cast<std::size_t>(grid.prows()),
              static_cast<std::size_t>(grid.pcols()));
  for (int r = 0; r < grid.size(); ++r)
    map.at(static_cast<std::size_t>(grid.row_of(r)),
           static_cast<std::size_t>(grid.col_of(r))) =
        per_rank[static_cast<std::size_t>(r)];
  return map;
}

double bench_scale() {
  if (const char* env = std::getenv("PSI_BENCH_SCALE")) {
    const double scale = std::atof(env);
    if (scale > 0) return scale;
  }
  return 1.0;
}

int bench_reps() {
  if (const char* env = std::getenv("PSI_BENCH_REPS")) {
    const int reps = std::atoi(env);
    if (reps > 0) return reps;
  }
  return 3;
}

}  // namespace psi::driver
