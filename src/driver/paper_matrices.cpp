#include "driver/paper_matrices.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace psi::driver {

const char* paper_matrix_name(PaperMatrix which) {
  switch (which) {
    case PaperMatrix::kDgPnf14000: return "DG_PNF14000-like";
    case PaperMatrix::kDgGraphene: return "DG_Graphene_32768-like";
    case PaperMatrix::kDgWater: return "DG_Water_12888-like";
    case PaperMatrix::kLuCBnC: return "LU_C_BN_C_4by2-like";
    case PaperMatrix::kAudikw1: return "audikw_1-like";
    case PaperMatrix::kFlan1565: return "Flan_1565-like";
  }
  return "unknown";
}

std::vector<PaperMatrix> all_paper_matrices() {
  return {PaperMatrix::kDgGraphene, PaperMatrix::kDgPnf14000,
          PaperMatrix::kDgWater, PaperMatrix::kLuCBnC, PaperMatrix::kAudikw1,
          PaperMatrix::kFlan1565};
}

namespace {
Int scaled(Int extent, double scale) {
  return std::max<Int>(2, static_cast<Int>(std::lround(extent * scale)));
}
}  // namespace

GeneratedMatrix make_paper_matrix(PaperMatrix which, double scale,
                                  std::uint64_t seed) {
  PSI_CHECK(scale > 0);
  switch (which) {
    case PaperMatrix::kDgPnf14000:
      // 2-D phosphorene nanoflake, adaptive-local-basis DG: a 2-D element
      // mesh with dense inter-element blocks ("relatively dense").
      return dg2d(scaled(32, scale), scaled(32, scale), 16, seed);
    case PaperMatrix::kDgGraphene:
      // Larger 2-D DG sheet.
      return dg2d(scaled(44, scale), scaled(44, scale), 16, seed);
    case PaperMatrix::kDgWater:
      // 3-D DG, small basis.
      return dg3d(scaled(8, scale), scaled(8, scale), scaled(8, scale), 10, seed);
    case PaperMatrix::kLuCBnC:
      // 3-D DG slab.
      return dg3d(scaled(12, scale), scaled(12, scale), scaled(6, scale), 12, seed);
    case PaperMatrix::kAudikw1:
      // 3-D solid mechanics, 3 dofs/node ("relatively sparse").
      return fem3d(scaled(26, scale), scaled(26, scale), scaled(26, scale), 3,
                   seed);
    case PaperMatrix::kFlan1565:
      // 3-D shell-like FEM, 3 dofs/node, flat in one dimension.
      return fem3d(scaled(34, scale), scaled(34, scale), scaled(10, scale), 3,
                   seed);
  }
  throw Error("unknown paper matrix");
}

}  // namespace psi::driver
