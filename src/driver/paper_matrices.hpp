/// \file paper_matrices.hpp
/// \brief Scaled analogs of the paper's six evaluation matrices.
///
/// The originals (DFT Hamiltonians and UF-collection FEM matrices, up to
/// n = 1.3M) are not shipped; these generators reproduce their structural
/// character at laptop scale (see DESIGN.md substitution table). `scale`
/// multiplies the mesh extents (1.0 = the default used by the benches).
/// EXPERIMENTS.md records the dimension/nnz of each analog next to the
/// original's.
#pragma once

#include <string>
#include <vector>

#include "sparse/generators.hpp"

namespace psi::driver {

enum class PaperMatrix {
  kDgPnf14000,     ///< DG_PNF14000: 2-D phosphorene DG Hamiltonian, dense blocks
  kDgGraphene,     ///< DG_Graphene_32768: larger 2-D DG Hamiltonian
  kDgWater,        ///< DG_Water_12888: 3-D DG Hamiltonian, smaller
  kLuCBnC,         ///< LU_C_BN_C_4by2: 3-D DG-type Hamiltonian
  kAudikw1,        ///< audikw_1: 3-D solid mechanics FEM, 3 dofs/node
  kFlan1565,       ///< Flan_1565: 3-D FEM shell, 3 dofs/node
};

const char* paper_matrix_name(PaperMatrix which);

/// All six, in the order of the paper's Table II.
std::vector<PaperMatrix> all_paper_matrices();

/// Builds the analog at the given scale (extents rounded to >= 2).
GeneratedMatrix make_paper_matrix(PaperMatrix which, double scale = 1.0,
                                  std::uint64_t seed = 2016);

}  // namespace psi::driver
