#include "driver/obs_report.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <numeric>

#include "pselinv/plan.hpp"

namespace psi::driver {

namespace {

std::string fmt(const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

const char* class_label(std::size_t c) {
  return c < static_cast<std::size_t>(pselinv::kCommClassCount)
             ? pselinv::comm_class_name(static_cast<int>(c))
             : "other";
}

}  // namespace

ObsAnalysis analyze_recording(const obs::Recorder& recorder,
                              const sim::MachineConfig& config) {
  ObsAnalysis analysis;
  analysis.path =
      obs::extract_critical_path(recorder, pselinv::kCommClassCount);
  analysis.contention = obs::analyze_contention(
      recorder, config.cores_per_node, config.nodes_per_group);
  return analysis;
}

std::string render_critical_path(const obs::CriticalPath& path) {
  std::string out;
  out += fmt("critical path: makespan %.6f s, %d handlers, %d network hops, "
             "%d local hops\n",
             path.makespan, path.handler_count, path.network_hops,
             path.local_hops);
  const double total = path.makespan > 0.0 ? path.makespan : 1.0;
  for (int c = 0; c < obs::kPathCategoryCount; ++c) {
    const double s = path.category_seconds[static_cast<std::size_t>(c)];
    out += fmt("  %-11s %10.6f s  %5.1f%%\n",
               obs::path_category_name(static_cast<obs::PathCategory>(c)), s,
               100.0 * s / total);
  }
  out += fmt("  communication total: %.6f s (%.1f%% of makespan)\n",
             path.comm_seconds(), 100.0 * path.comm_seconds() / total);
  out += "  on-path communication by collective:\n";
  for (std::size_t c = 0; c < path.class_comm_seconds.size(); ++c) {
    if (path.class_hops[c] == 0) continue;
    out += fmt("    %-12s %10.6f s over %lld hops\n", class_label(c),
               path.class_comm_seconds[c],
               static_cast<long long>(path.class_hops[c]));
  }
  return out;
}

std::string render_contention(const obs::ContentionReport& report,
                              int top_ranks) {
  std::string out;
  out += "link tiers (all recorded messages):\n";
  out += fmt("  %-12s %10s %14s %12s %12s %12s %12s\n", "tier", "messages",
             "bytes", "transfer_s", "latency_s", "send_wait_s", "recv_wait_s");
  for (int t = 0; t < obs::kTierCount; ++t) {
    const obs::TierStats& tier = report.tiers[static_cast<std::size_t>(t)];
    out += fmt("  %-12s %10lld %14lld %12.6f %12.6f %12.6f %12.6f\n",
               obs::tier_name(t), static_cast<long long>(tier.messages),
               static_cast<long long>(tier.bytes), tier.transfer_seconds,
               tier.latency_seconds, tier.send_queue_wait,
               tier.recv_queue_wait);
  }

  std::vector<int> order(report.per_rank.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&report](int a, int b) {
    return report.per_rank[static_cast<std::size_t>(a)].send_residency >
           report.per_rank[static_cast<std::size_t>(b)].send_residency;
  });
  const int n = std::min<int>(top_ranks, static_cast<int>(order.size()));
  out += fmt("busiest send NICs (top %d by residency):\n", n);
  for (int i = 0; i < n; ++i) {
    const int r = order[static_cast<std::size_t>(i)];
    const obs::NicStats& nic = report.per_rank[static_cast<std::size_t>(r)];
    if (nic.messages_out == 0) break;
    out += fmt("  rank %-6d residency %10.6f s  queue-wait %10.6f s  "
               "%lld msgs out  max depth %d\n",
               r, nic.send_residency, nic.send_queue_wait,
               static_cast<long long>(nic.messages_out),
               nic.max_send_queue_depth);
  }
  return out;
}

void record_run_metrics(obs::MetricsRegistry& registry,
                        const std::string& bench, const std::string& scheme,
                        int p, const pselinv::RunResult& result) {
  obs::Labels base;
  base.set("bench", bench).scheme(scheme).set("p", p);

  registry.gauge("makespan_seconds", base).set(result.makespan);
  registry.gauge("mean_compute_seconds", base)
      .set(result.mean_compute_seconds());
  registry.gauge("mean_comm_seconds", base).set(result.mean_comm_seconds());
  registry.counter("events_total", base).add(result.events);
  registry.counter("blocks_finalized_total", base)
      .add(result.blocks_finalized);

  // Traffic volume per collective and the send-volume balance over ranks —
  // the load-balance signal the paper's volume analysis is about.
  Count total_sent = 0;
  Count max_sent = 0;
  std::vector<Count> class_bytes;
  for (const sim::RankStats& stats : result.rank_stats) {
    Count sent = 0;
    if (class_bytes.size() < stats.per_class.size())
      class_bytes.resize(stats.per_class.size(), 0);
    for (std::size_t c = 0; c < stats.per_class.size(); ++c) {
      sent += stats.per_class[c].bytes_sent;
      class_bytes[c] += stats.per_class[c].bytes_sent;
    }
    total_sent += sent;
    max_sent = std::max(max_sent, sent);
  }
  registry.counter("bytes_sent_total", base).add(total_sent);
  registry.counter("bytes_sent_max_rank", base).add(max_sent);
  for (std::size_t c = 0; c < class_bytes.size(); ++c) {
    if (class_bytes[c] == 0) continue;
    obs::Labels labels = base;
    labels.collective(class_label(c));
    registry.counter("collective_bytes_total", labels).add(class_bytes[c]);
  }
}

}  // namespace psi::driver
