#include "store/sharded_service.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/check.hpp"

namespace psi::store {

ShardedService::ShardedService(const Config& config)
    : config_(config),
      tenants_(config.default_quota, config.tenant_quotas) {
  PSI_CHECK_MSG(config_.shards >= 1,
                "shard count must be >= 1, got " << config_.shards);
  if (!config_.plan_dir.empty()) {
    PlanStore::Config store_config;
    store_config.directory = config_.plan_dir;
    store_config.read_only = config_.read_only_store;
    store_config.expected = config_.service.plan;
    store_config.fs = config_.store_fs;
    store_config.scan_on_open = config_.store_scan_on_open;
    store_.emplace(store_config);
  }
  services_.reserve(static_cast<std::size_t>(config_.shards));
  for (int s = 0; s < config_.shards; ++s) {
    serve::Service::Config shard_config = config_.service;
    shard_config.shard = s;
    if (store_) shard_config.cache.storage = &*store_;
    if (!shard_config.access_log_path.empty() && config_.shards > 1)
      shard_config.access_log_path += ".s" + std::to_string(s);
    auto caller_observer = std::move(shard_config.observer);
    shard_config.observer = [this, caller_observer](
                                const serve::Response& response) {
      tenants_.record(response.tenant, response.status,
                      response.total_seconds);
      if (caller_observer) caller_observer(response);
    };
    services_.push_back(std::make_unique<serve::Service>(shard_config));
  }
}

int ShardedService::shard_of(const serve::Fingerprint& fp) const {
  return shard_of_fingerprint(fp.hi, fp.lo, shards());
}

std::future<serve::Response> ShardedService::submit(serve::Request request) {
  if (auto reject = tenants_.try_admit(request.tenant)) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++quota_rejected_;
    }
    serve::Response response;
    response.id = std::move(request.id);
    response.tenant = std::move(request.tenant);
    response.priority = request.priority;
    response.status = serve::Status::kRejected;
    response.detail = std::move(*reject);
    std::promise<serve::Response> promise;
    promise.set_value(std::move(response));
    return promise.get_future();
  }
  const serve::Fingerprint fp = serve::plan_fingerprint(
      request.matrix.pattern, config_.service.plan);
  return services_[static_cast<std::size_t>(shard_of(fp))]->submit(
      std::move(request));
}

serve::Service::DrainReport ShardedService::drain(double timeout_seconds) {
  std::vector<serve::Service::DrainReport> reports(services_.size());
  std::vector<std::thread> drains;
  drains.reserve(services_.size());
  for (std::size_t s = 0; s < services_.size(); ++s)
    drains.emplace_back([this, s, timeout_seconds, &reports] {
      reports[s] = services_[s]->drain(timeout_seconds);
    });
  for (std::thread& t : drains) t.join();
  serve::Service::DrainReport total;
  total.completed = true;
  for (const serve::Service::DrainReport& r : reports) {
    total.completed = total.completed && r.completed;
    total.hard_failed += r.hard_failed;
    total.waited_seconds = std::max(total.waited_seconds, r.waited_seconds);
  }
  return total;
}

void ShardedService::shutdown() {
  for (auto& service : services_) service->shutdown();
}

serve::PlanCache::Stats ShardedService::cache_stats() const {
  serve::PlanCache::Stats total;
  for (const auto& service : services_) {
    const serve::PlanCache::Stats s = service->cache_stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.oversize += s.oversize;
    total.coalesced += s.coalesced;
    total.store_hits += s.store_hits;
    total.store_misses += s.store_misses;
    total.store_load_failures += s.store_load_failures;
    total.store_writes += s.store_writes;
    total.store_write_failures += s.store_write_failures;
    if (!s.last_store_error.empty()) total.last_store_error = s.last_store_error;
    total.bytes += s.bytes;
    total.entries += s.entries;
    total.bytes_high_water += s.bytes_high_water;
  }
  return total;
}

serve::Service::Counters ShardedService::counters() const {
  serve::Service::Counters total;
  for (const auto& service : services_) {
    const serve::Service::Counters c = service->counters();
    total.submitted += c.submitted;
    total.completed += c.completed;
    total.failed += c.failed;
    total.rejected += c.rejected;
    total.shutdown_aborted += c.shutdown_aborted;
    total.deadline_expired += c.deadline_expired;
    total.cancelled += c.cancelled;
    total.batch_followers += c.batch_followers;
    total.aged_promotions += c.aged_promotions;
    total.worker_stalls += c.worker_stalls;
    total.watchdog_failovers += c.watchdog_failovers;
    total.queue_high_water += c.queue_high_water;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    total.rejected += quota_rejected_;
  }
  return total;
}

Count ShardedService::quota_rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quota_rejected_;
}

void ShardedService::fold_metrics(obs::MetricsRegistry& registry) const {
  // Shard counters accumulate into the same unlabelled series (counters
  // add); the per-shard gauges end up reporting the last shard, which is
  // fine for the cache-byte series (all shards share one budget config).
  for (const auto& service : services_) service->fold_metrics(registry);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    registry.counter("serve_quota_rejected").add(quota_rejected_);
  }
  tenants_.fold_metrics(registry);
  if (store_) store_->fold_metrics(registry);
}

}  // namespace psi::store
