#include "store/filesystem.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define PSI_HAVE_FSYNC 1
#endif

namespace psi::store {

namespace fs = std::filesystem;

namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

FileSystem::ReadResult RealFileSystem::read_file(const std::string& path,
                                                 std::vector<std::uint8_t>& out,
                                                 std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::error_code ec;
    if (!fs::exists(path, ec)) return ReadResult::kNotFound;
    set_error(error, "cannot open " + path + " for reading");
    return ReadResult::kError;
  }
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  if (in.bad()) {
    set_error(error, "read error on " + path);
    return ReadResult::kError;
  }
  return ReadResult::kOk;
}

bool RealFileSystem::write_file(const std::string& path, const void* data,
                                std::size_t size, bool sync,
                                std::string* error) {
#if PSI_HAVE_FSYNC
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    set_error(error, "cannot open " + path + " for writing");
    return false;
  }
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  std::size_t written = 0;
  while (written < size) {
    const ::ssize_t n = ::write(fd, p + written, size - written);
    if (n < 0) {
      ::close(fd);
      set_error(error, "write error on " + path);
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  if (sync && ::fsync(fd) != 0) {
    ::close(fd);
    set_error(error, "fsync failed on " + path);
    return false;
  }
  if (::close(fd) != 0) {
    set_error(error, "close failed on " + path);
    return false;
  }
  return true;
#else
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    set_error(error, "cannot open " + path + " for writing");
    return false;
  }
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(size));
  out.flush();
  if (!out) {
    set_error(error, "write error on " + path);
    return false;
  }
  (void)sync;  // no portable fsync without POSIX fds
  return true;
#endif
}

bool RealFileSystem::rename_file(const std::string& from, const std::string& to,
                                 std::string* error) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    set_error(error, "rename " + from + " -> " + to + " failed");
    return false;
  }
  return true;
}

bool RealFileSystem::remove_file(const std::string& path, std::string* error) {
  std::error_code ec;
  fs::remove(path, ec);  // missing file leaves ec clear
  if (ec) {
    set_error(error, "remove " + path + " failed: " + ec.message());
    return false;
  }
  return true;
}

bool RealFileSystem::create_directories(const std::string& path,
                                        std::string* error) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    set_error(error,
              "cannot create directory " + path + ": " + ec.message());
    return false;
  }
  return true;
}

bool RealFileSystem::list_dir(const std::string& dir,
                              std::vector<std::string>& out,
                              std::string* error) {
  out.clear();
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    set_error(error, "cannot list " + dir + ": " + ec.message());
    return false;
  }
  for (const auto& entry : it) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec)) continue;
    out.push_back(entry.path().filename().string());
  }
  std::sort(out.begin(), out.end());
  return true;
}

bool RealFileSystem::sync_dir(const std::string& dir, std::string* error) {
#if PSI_HAVE_FSYNC
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    set_error(error, "cannot open directory " + dir + " for fsync");
    return false;
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    set_error(error, "directory fsync failed on " + dir);
    return false;
  }
  return true;
#else
  (void)dir;
  (void)error;
  return true;  // best effort: no directory fds on this platform
#endif
}

FileSystem& real_filesystem() {
  static RealFileSystem instance;
  return instance;
}

}  // namespace psi::store
