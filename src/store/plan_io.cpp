#include "store/plan_io.hpp"

#include <cstring>
#include <utility>

#include "ordering/permutation.hpp"
#include "pselinv/plan.hpp"
#include "trees/comm_tree.hpp"

namespace psi::store {

namespace {

using serve::Fingerprint;
using serve::FingerprintHasher;
using serve::PlanConfig;
using serve::ServePlan;

constexpr std::size_t kHeaderBytes = 32;        // magic..fingerprint
constexpr std::size_t kTableEntryBytes = 32;    // id, reserved, off, len, sum

std::uint64_t checksum(const std::uint8_t* data, std::size_t size) {
  FingerprintHasher hasher;
  hasher.mix_bytes(data, size);
  return hasher.finish().lo;
}

/// Little-endian append-only byte sink.
class ByteWriter {
 public:
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back((v >> (8 * i)) & 0xff);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back((v >> (8 * i)) & 0xff);
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  template <typename T>
  void vec_i32(const std::vector<T>& v) {
    static_assert(sizeof(T) == 4);
    u64(v.size());
    for (T x : v) i32(static_cast<std::int32_t>(x));
  }
  void vec_i64(const std::vector<std::int64_t>& v) {
    u64(v.size());
    for (std::int64_t x : v) i64(x);
  }
  void raw(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian reader over one section's payload. Every
/// read that would overrun throws StoreError naming the section.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size, const char* what)
      : data_(data), size_(size), what_(what) {}

  std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  template <typename T = std::int32_t>
  std::vector<T> vec_i32() {
    static_assert(sizeof(T) == 4);
    const std::uint64_t count = len(4);
    std::vector<T> v;
    v.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
      v.push_back(static_cast<T>(i32()));
    return v;
  }
  std::vector<std::int64_t> vec_i64() {
    const std::uint64_t count = len(8);
    std::vector<std::int64_t> v;
    v.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) v.push_back(i64());
    return v;
  }
  void expect_exhausted() const {
    if (pos_ != size_)
      throw StoreError(std::string(what_) + ": " +
                       std::to_string(size_ - pos_) +
                       " trailing bytes after payload");
  }

 private:
  /// Reads an array length and verifies the elements actually fit in what
  /// remains — a huge bogus count fails here instead of in reserve().
  std::uint64_t len(std::size_t elem_bytes) {
    const std::uint64_t count = u64();
    if (count > remaining() / elem_bytes)
      throw StoreError(std::string(what_) + ": array length " +
                       std::to_string(count) + " exceeds section payload");
    return count;
  }
  void need(std::size_t n) const {
    if (size_ - pos_ < n)
      throw StoreError(std::string(what_) + ": truncated payload (need " +
                       std::to_string(n) + " bytes at offset " +
                       std::to_string(pos_) + " of " + std::to_string(size_) +
                       ")");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  const char* what_;
};

// --- section payloads -------------------------------------------------------

void write_config(ByteWriter& w, const PlanConfig& c) {
  w.i32(c.grid_rows);
  w.i32(c.grid_cols);
  w.i32(static_cast<std::int32_t>(c.tree.scheme));
  w.i32(c.tree.hybrid_flat_threshold);
  w.u64(c.tree.seed);
  w.i32(static_cast<std::int32_t>(c.symmetry));
  w.i32(static_cast<std::int32_t>(c.analysis.ordering.method));
  w.i32(static_cast<std::int32_t>(c.analysis.ordering.dissection_leaf_size));
  w.i32(static_cast<std::int32_t>(c.analysis.supernodes.max_size));
  w.i32(static_cast<std::int32_t>(c.analysis.supernodes.relax_small));
  w.i32(c.machine.cores_per_node);
  w.i32(c.machine.nodes_per_group);
  w.f64(c.machine.flop_rate);
  w.f64(c.machine.msg_overhead);
  w.f64(c.machine.lat_intranode);
  w.f64(c.machine.bw_intranode);
  w.f64(c.machine.lat_intragroup);
  w.f64(c.machine.bw_intragroup);
  w.f64(c.machine.lat_intergroup);
  w.f64(c.machine.bw_intergroup);
  w.f64(c.machine.jitter_sigma);
  w.u64(c.machine.jitter_seed);
}

PlanConfig read_config(ByteReader& r) {
  PlanConfig c;
  c.grid_rows = r.i32();
  c.grid_cols = r.i32();
  const std::int32_t scheme = r.i32();
  if (scheme < 0 ||
      scheme > static_cast<std::int32_t>(trees::TreeScheme::kShiftedBinomial))
    throw StoreError("config: unknown tree scheme " + std::to_string(scheme));
  c.tree.scheme = static_cast<trees::TreeScheme>(scheme);
  c.tree.hybrid_flat_threshold = r.i32();
  c.tree.seed = r.u64();
  const std::int32_t symmetry = r.i32();
  if (symmetry < 0 || symmetry > 1)
    throw StoreError("config: unknown value symmetry " +
                     std::to_string(symmetry));
  c.symmetry = static_cast<pselinv::ValueSymmetry>(symmetry);
  const std::int32_t method = r.i32();
  if (method < 0 ||
      method > static_cast<std::int32_t>(OrderingMethod::kGeometricDissection))
    throw StoreError("config: unknown ordering method " +
                     std::to_string(method));
  c.analysis.ordering.method = static_cast<OrderingMethod>(method);
  c.analysis.ordering.dissection_leaf_size = r.i32();
  c.analysis.supernodes.max_size = r.i32();
  c.analysis.supernodes.relax_small = r.i32();
  c.machine.cores_per_node = r.i32();
  c.machine.nodes_per_group = r.i32();
  c.machine.flop_rate = r.f64();
  c.machine.msg_overhead = r.f64();
  c.machine.lat_intranode = r.f64();
  c.machine.bw_intranode = r.f64();
  c.machine.lat_intragroup = r.f64();
  c.machine.bw_intragroup = r.f64();
  c.machine.lat_intergroup = r.f64();
  c.machine.bw_intergroup = r.f64();
  c.machine.jitter_sigma = r.f64();
  c.machine.jitter_seed = r.u64();
  return c;
}

void write_tree(ByteWriter& w, const trees::CommTree& tree) {
  const trees::CommTree::Raw raw = tree.to_raw();
  w.i32(raw.root);
  w.vec_i32(raw.order);
  w.vec_i32(raw.parent);
  w.vec_i32(raw.children_offsets);
  w.vec_i32(raw.children_flat);
  w.vec_i32(raw.pos_to_order);
  w.i32(raw.ap_first);
  w.i32(raw.ap_last);
  w.i32(raw.ap_stride);
  w.vec_i32(raw.sorted_ranks);
}

trees::CommTree read_tree(ByteReader& r) {
  trees::CommTree::Raw raw;
  raw.root = r.i32();
  raw.order = r.vec_i32<int>();
  raw.parent = r.vec_i32<int>();
  raw.children_offsets = r.vec_i32<int>();
  raw.children_flat = r.vec_i32<int>();
  raw.pos_to_order = r.vec_i32<int>();
  raw.ap_first = r.i32();
  raw.ap_last = r.i32();
  raw.ap_stride = r.i32();
  raw.sorted_ranks = r.vec_i32<int>();
  return trees::CommTree::from_raw(std::move(raw));
}

void write_trees(ByteWriter& w, const std::vector<trees::CommTree>& trees) {
  w.u64(trees.size());
  for (const auto& t : trees) write_tree(w, t);
}

std::vector<trees::CommTree> read_trees(ByteReader& r) {
  const std::uint64_t count = r.u64();
  if (count > r.remaining() / 4)  // each tree is >= a handful of words
    throw StoreError("comm_plan: tree count " + std::to_string(count) +
                     " exceeds section payload");
  std::vector<trees::CommTree> trees;
  trees.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) trees.push_back(read_tree(r));
  return trees;
}

void write_comm_plan(ByteWriter& w, const pselinv::Plan& plan) {
  const Int nsup = plan.supernode_count();
  const std::int64_t kt = plan.kt_count();
  // Index tables first (fixed stride from the section start).
  std::vector<std::int64_t> kt_offset(static_cast<std::size_t>(nsup) + 1);
  for (Int k = 0; k < nsup; ++k)
    kt_offset[static_cast<std::size_t>(k)] = plan.kt_id(k, 0);
  kt_offset[static_cast<std::size_t>(nsup)] = kt;
  std::vector<std::int32_t> ord_row(static_cast<std::size_t>(kt));
  std::vector<std::int32_t> ord_col(static_cast<std::size_t>(kt));
  for (std::int64_t t = 0; t < kt; ++t) {
    ord_row[static_cast<std::size_t>(t)] = plan.row_ordinal(t);
    ord_col[static_cast<std::size_t>(t)] = plan.col_ordinal(t);
  }
  w.vec_i64(kt_offset);
  w.vec_i32(ord_row);
  w.vec_i32(ord_col);
  w.u64(static_cast<std::uint64_t>(nsup));
  for (Int k = 0; k < nsup; ++k) {
    const pselinv::SupernodePlan& s = plan.supernode(k);
    w.vec_i32(s.prows);
    w.vec_i32(s.pcols);
    w.vec_i32(s.prow_counts);
    w.vec_i32(s.pcol_counts);
    w.vec_i32(s.pcols_a);
    w.vec_i32(s.prows_b);
    write_tree(w, s.diag_bcast);
    write_tree(w, s.col_reduce);
    write_trees(w, s.col_bcast);
    write_trees(w, s.row_reduce);
    w.vec_i32(s.cross_dst);
    w.vec_i32(s.cross_src);
    write_tree(w, s.diag_row_bcast);
    write_trees(w, s.row_bcast);
    write_trees(w, s.col_reduce_up);
  }
}

pselinv::Plan::RawParts read_comm_plan(ByteReader& r, const PlanConfig& cfg) {
  pselinv::Plan::RawParts parts;
  parts.tree_options = cfg.tree;
  parts.symmetry = cfg.symmetry;
  parts.kt_offset = r.vec_i64();
  parts.ord_row = r.vec_i32();
  parts.ord_col = r.vec_i32();
  const std::uint64_t nsup = r.u64();
  if (nsup > r.remaining() / 4)
    throw StoreError("comm_plan: supernode count " + std::to_string(nsup) +
                     " exceeds section payload");
  parts.sup.reserve(nsup);
  for (std::uint64_t k = 0; k < nsup; ++k) {
    pselinv::SupernodePlan s;
    s.prows = r.vec_i32<int>();
    s.pcols = r.vec_i32<int>();
    s.prow_counts = r.vec_i32();
    s.pcol_counts = r.vec_i32();
    s.pcols_a = r.vec_i32<int>();
    s.prows_b = r.vec_i32<int>();
    s.diag_bcast = read_tree(r);
    s.col_reduce = read_tree(r);
    s.col_bcast = read_trees(r);
    s.row_reduce = read_trees(r);
    s.cross_dst = r.vec_i32<int>();
    s.cross_src = r.vec_i32<int>();
    s.diag_row_bcast = read_tree(r);
    s.row_bcast = read_trees(r);
    s.col_reduce_up = read_trees(r);
    parts.sup.push_back(std::move(s));
  }
  return parts;
}

void write_scatter(ByteWriter& w, const std::vector<ServePlan::ValueSlot>& s) {
  w.u64(s.size());
  // Fixed-width 16-byte slots: a reader can seek to slot p directly.
  for (const ServePlan::ValueSlot& slot : s) {
    w.u32(static_cast<std::uint32_t>(slot.kind));
    w.i32(static_cast<std::int32_t>(slot.sup));
    w.i32(static_cast<std::int32_t>(slot.row));
    w.i32(static_cast<std::int32_t>(slot.col));
  }
}

std::vector<ServePlan::ValueSlot> read_scatter(ByteReader& r) {
  const std::uint64_t count = r.u64();
  if (count > r.remaining() / 16)
    throw StoreError("scatter: slot count " + std::to_string(count) +
                     " exceeds section payload");
  std::vector<ServePlan::ValueSlot> slots;
  slots.reserve(count);
  for (std::uint64_t p = 0; p < count; ++p) {
    const std::uint32_t kind = r.u32();
    if (kind > static_cast<std::uint32_t>(ServePlan::SlotKind::kUpper))
      throw StoreError("scatter: unknown slot kind " + std::to_string(kind) +
                       " at slot " + std::to_string(p));
    ServePlan::ValueSlot slot;
    slot.kind = static_cast<ServePlan::SlotKind>(kind);
    slot.sup = static_cast<Int>(r.i32());
    slot.row = static_cast<Int>(r.i32());
    slot.col = static_cast<Int>(r.i32());
    slots.push_back(slot);
  }
  return slots;
}

// --- header / table ---------------------------------------------------------

struct Section {
  std::uint32_t id;
  std::uint64_t offset;
  std::uint64_t length;
  std::uint64_t sum;
};

/// Parses + integrity-checks the fixed header and section table. Returns
/// the table; every section's bounds and checksum have been verified.
std::vector<Section> parse_header(const std::uint8_t* data, std::size_t size,
                                  Fingerprint* fp_out) {
  if (size < kHeaderBytes + 8)
    throw StoreError("file too short for a psi-plan header (" +
                     std::to_string(size) + " bytes)");
  if (std::memcmp(data, kMagic, sizeof kMagic) != 0)
    throw StoreError("bad magic: not a psi-plan file");
  ByteReader head(data + 8, kHeaderBytes - 8, "header");
  const std::uint32_t version = head.u32();
  if (version != kFormatVersion)
    throw StoreError("format version mismatch: file is v" +
                     std::to_string(version) + ", reader expects v" +
                     std::to_string(kFormatVersion));
  const std::uint32_t count = head.u32();
  if (count == 0 || count > 64)
    throw StoreError("implausible section count " + std::to_string(count));
  Fingerprint fp;
  fp.hi = head.u64();
  fp.lo = head.u64();
  if (fp_out != nullptr) *fp_out = fp;

  const std::size_t table_end = kHeaderBytes + kTableEntryBytes * count;
  if (size < table_end + 8)
    throw StoreError("file truncated inside the section table");
  const std::uint64_t expect = checksum(data, table_end);
  ByteReader sum_reader(data + table_end, 8, "table checksum");
  if (sum_reader.u64() != expect)
    throw StoreError("header/table checksum mismatch (corrupt header)");

  std::vector<Section> sections;
  sections.reserve(count);
  ByteReader table(data + kHeaderBytes, kTableEntryBytes * count,
                   "section table");
  for (std::uint32_t i = 0; i < count; ++i) {
    Section s;
    s.id = table.u32();
    table.u32();  // reserved
    s.offset = table.u64();
    s.length = table.u64();
    s.sum = table.u64();
    if (s.offset > size || s.length > size - s.offset)
      throw StoreError(std::string("section ") + section_name(s.id) +
                       ": extent [" + std::to_string(s.offset) + ", +" +
                       std::to_string(s.length) + ") exceeds file size " +
                       std::to_string(size));
    if (checksum(data + s.offset, s.length) != s.sum)
      throw StoreError(std::string("section ") + section_name(s.id) +
                       ": checksum mismatch (corrupt payload)");
    sections.push_back(s);
  }
  return sections;
}

const Section& find_section(const std::vector<Section>& sections,
                            std::uint32_t id) {
  const Section* found = nullptr;
  for (const Section& s : sections) {
    if (s.id != id) continue;
    if (found != nullptr)
      throw StoreError(std::string("duplicate section ") + section_name(id));
    found = &s;
  }
  if (found == nullptr)
    throw StoreError(std::string("missing section ") + section_name(id));
  return *found;
}

}  // namespace

const char* section_name(std::uint32_t id) {
  switch (id) {
    case kConfig: return "config";
    case kPattern: return "pattern";
    case kPermutation: return "permutation";
    case kEtree: return "etree";
    case kBlocks: return "blocks";
    case kCommPlan: return "comm_plan";
    case kTrace: return "trace";
    case kScatter: return "scatter";
  }
  return "?";
}

std::vector<std::uint8_t> encode_plan_config(const PlanConfig& config) {
  ByteWriter w;
  write_config(w, config);
  return w.take();
}

std::vector<std::uint8_t> encode_serve_plan(const ServePlan& plan) {
  // Build each section payload first, then lay the file out.
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> sections;
  sections.emplace_back(kConfig, encode_plan_config(plan.config));
  {
    ByteWriter w;
    const SparsityPattern& p = plan.analysis.matrix.pattern;
    w.i32(static_cast<std::int32_t>(p.n));
    w.vec_i32(p.col_ptr);
    w.vec_i32(p.row_idx);
    sections.emplace_back(kPattern, w.take());
  }
  {
    ByteWriter w;
    w.vec_i32(plan.analysis.perm.old_to_new());
    sections.emplace_back(kPermutation, w.take());
  }
  {
    ByteWriter w;
    w.vec_i32(plan.analysis.etree);
    w.vec_i32(plan.analysis.counts);
    sections.emplace_back(kEtree, w.take());
  }
  {
    ByteWriter w;
    const BlockStructure& b = plan.analysis.blocks;
    w.vec_i32(b.part.starts);
    w.vec_i32(b.part.sup_of_col);
    w.vec_i32(b.parent);
    // struct_of as CSR: offsets then the concatenated ancestor lists.
    std::vector<std::int64_t> offsets(b.struct_of.size() + 1, 0);
    std::vector<Int> flat;
    for (std::size_t k = 0; k < b.struct_of.size(); ++k) {
      flat.insert(flat.end(), b.struct_of[k].begin(), b.struct_of[k].end());
      offsets[k + 1] = static_cast<std::int64_t>(flat.size());
    }
    w.vec_i64(offsets);
    w.vec_i32(flat);
    sections.emplace_back(kBlocks, w.take());
  }
  {
    ByteWriter w;
    write_comm_plan(w, plan.plan);
    sections.emplace_back(kCommPlan, w.take());
  }
  {
    ByteWriter w;
    w.f64(plan.trace_makespan);
    w.i64(plan.trace_events);
    w.f64(plan.trace_seconds);
    w.f64(plan.build_seconds);
    sections.emplace_back(kTrace, w.take());
  }
  {
    ByteWriter w;
    write_scatter(w, plan.scatter);
    sections.emplace_back(kScatter, w.take());
  }

  ByteWriter out;
  out.raw(kMagic, sizeof kMagic);
  out.u32(kFormatVersion);
  out.u32(static_cast<std::uint32_t>(sections.size()));
  out.u64(plan.fingerprint.hi);
  out.u64(plan.fingerprint.lo);
  std::uint64_t offset = kHeaderBytes + kTableEntryBytes * sections.size() + 8;
  for (const auto& [id, payload] : sections) {
    out.u32(id);
    out.u32(0);  // reserved
    out.u64(offset);
    out.u64(payload.size());
    out.u64(checksum(payload.data(), payload.size()));
    offset += payload.size();
  }
  out.u64(0);  // table checksum placeholder
  const std::size_t sum_at = out.size() - 8;
  std::vector<std::uint8_t> bytes = out.take();
  const std::uint64_t head_sum = checksum(bytes.data(), sum_at);
  for (int i = 0; i < 8; ++i)
    bytes[sum_at + static_cast<std::size_t>(i)] = (head_sum >> (8 * i)) & 0xff;
  for (const auto& [id, payload] : sections)
    bytes.insert(bytes.end(), payload.begin(), payload.end());
  return bytes;
}

serve::Fingerprint peek_fingerprint(const std::uint8_t* data,
                                    std::size_t size) {
  Fingerprint fp;
  parse_header(data, size, &fp);
  return fp;
}

std::shared_ptr<const ServePlan> decode_serve_plan(const std::uint8_t* data,
                                                   std::size_t size) {
  Fingerprint fp;
  const std::vector<Section> sections = parse_header(data, size, &fp);
  const auto reader = [&](std::uint32_t id) {
    const Section& s = find_section(sections, id);
    return ByteReader(data + s.offset, s.length, section_name(id));
  };

  ByteReader config_r = reader(kConfig);
  const PlanConfig config = read_config(config_r);
  config_r.expect_exhausted();

  SymbolicAnalysis analysis;
  {
    ByteReader r = reader(kPattern);
    analysis.matrix.pattern.n = static_cast<Int>(r.i32());
    analysis.matrix.pattern.col_ptr = r.vec_i32<Int>();
    analysis.matrix.pattern.row_idx = r.vec_i32<Int>();
    r.expect_exhausted();
    analysis.matrix.pattern.validate();  // throws psi::Error on bad shape
  }
  {
    ByteReader r = reader(kPermutation);
    analysis.perm = Permutation(r.vec_i32<Int>());  // validates bijectivity
    r.expect_exhausted();
    if (analysis.perm.size() != analysis.matrix.pattern.n)
      throw StoreError("permutation: size " +
                       std::to_string(analysis.perm.size()) +
                       " does not match pattern n " +
                       std::to_string(analysis.matrix.pattern.n));
  }
  {
    ByteReader r = reader(kEtree);
    analysis.etree = r.vec_i32<Int>();
    analysis.counts = r.vec_i32<Int>();
    r.expect_exhausted();
    const auto n = static_cast<std::size_t>(analysis.matrix.pattern.n);
    if (analysis.etree.size() != n || analysis.counts.size() != n)
      throw StoreError("etree: table sizes do not match pattern n");
  }
  {
    ByteReader r = reader(kBlocks);
    BlockStructure& b = analysis.blocks;
    b.part.starts = r.vec_i32<Int>();
    b.part.sup_of_col = r.vec_i32<Int>();
    b.parent = r.vec_i32<Int>();
    const std::vector<std::int64_t> offsets = r.vec_i64();
    const std::vector<Int> flat = r.vec_i32<Int>();
    r.expect_exhausted();
    if (offsets.empty() || offsets.front() != 0 ||
        offsets.back() != static_cast<std::int64_t>(flat.size()))
      throw StoreError("blocks: struct_of CSR offsets are inconsistent");
    b.struct_of.resize(offsets.size() - 1);
    for (std::size_t k = 0; k + 1 < offsets.size(); ++k) {
      const std::int64_t lo = offsets[k], hi = offsets[k + 1];
      if (lo < 0 || hi < lo || hi > static_cast<std::int64_t>(flat.size()))
        throw StoreError("blocks: struct_of CSR offsets are inconsistent");
      b.struct_of[k].assign(flat.begin() + lo, flat.begin() + hi);
    }
    b.part.validate();
    b.validate();  // throws psi::Error on malformed structure
    if (b.part.n() != analysis.matrix.pattern.n)
      throw StoreError("blocks: partition covers " +
                       std::to_string(b.part.n()) + " columns, pattern has " +
                       std::to_string(analysis.matrix.pattern.n));
  }

  ByteReader comm_r = reader(kCommPlan);
  pselinv::Plan::RawParts parts = read_comm_plan(comm_r, config);
  comm_r.expect_exhausted();

  // Plan's RawParts constructor cross-checks the image against the block
  // structure (supernode counts, struct sizes, ordinal table lengths).
  auto plan = std::make_shared<ServePlan>(fp, config, std::move(analysis),
                                          std::move(parts));
  {
    ByteReader r = reader(kTrace);
    plan->trace_makespan = r.f64();
    plan->trace_events = static_cast<Count>(r.i64());
    plan->trace_seconds = r.f64();
    plan->build_seconds = r.f64();
    r.expect_exhausted();
  }
  {
    ByteReader r = reader(kScatter);
    plan->scatter = read_scatter(r);
    r.expect_exhausted();
    if (plan->scatter.size() != plan->analysis.matrix.pattern.row_idx.size())
      throw StoreError("scatter: " + std::to_string(plan->scatter.size()) +
                       " slots for a pattern with " +
                       std::to_string(plan->analysis.matrix.pattern.row_idx.size()) +
                       " entries");
  }
  plan->bytes = serve::serve_plan_heap_bytes(*plan);
  return plan;
}

}  // namespace psi::store
