#include "store/admission.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "serve/service.hpp"

namespace psi::store {

TokenBucket::TokenBucket(double rate_per_s, double burst)
    : rate_per_s_(rate_per_s),
      burst_(std::max(burst, 1.0)),
      tokens_(std::max(burst, 1.0)) {}

void TokenBucket::refill(double now_s) {
  if (now_s > last_s_) {
    tokens_ = std::min(burst_, tokens_ + (now_s - last_s_) * rate_per_s_);
    last_s_ = now_s;
  }
}

bool TokenBucket::try_take(double now_s) {
  if (rate_per_s_ <= 0.0) return true;
  refill(now_s);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::available(double now_s) const {
  if (rate_per_s_ <= 0.0) return burst_;
  TokenBucket copy = *this;
  copy.refill(now_s);
  return copy.tokens_;
}

TenantQuota validated_quota(double rate_per_s, double burst) {
  PSI_CHECK_MSG(std::isfinite(rate_per_s) && rate_per_s >= 0.0,
                "quota rate must be finite and >= 0 (0 = unlimited), got "
                    << rate_per_s);
  PSI_CHECK_MSG(std::isfinite(burst) && burst >= 1.0,
                "quota burst must be finite and >= 1, got " << burst);
  TenantQuota quota;
  quota.rate_per_s = rate_per_s;
  quota.burst = burst;
  return quota;
}

TenantTable::TenantTable(const TenantQuota& default_quota,
                         const std::map<std::string, TenantQuota>& overrides)
    : default_quota_(default_quota), overrides_(overrides) {}

TenantTable::Entry& TenantTable::entry_locked(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    const auto quota_it = overrides_.find(tenant);
    const TenantQuota& quota =
        quota_it != overrides_.end() ? quota_it->second : default_quota_;
    Entry entry;
    entry.bucket = TokenBucket(quota.rate_per_s, quota.burst);
    entry.stats.tenant = tenant;
    it = tenants_.emplace(tenant, std::move(entry)).first;
  }
  return it->second;
}

std::optional<std::string> TenantTable::try_admit(const std::string& tenant) {
  return try_admit_at(tenant, clock_.seconds());
}

std::optional<std::string> TenantTable::try_admit_at(const std::string& tenant,
                                                     double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entry_locked(tenant);
  if (entry.bucket.try_take(now_s)) {
    ++entry.stats.admitted;
    return std::nullopt;
  }
  ++entry.stats.rejected;
  std::ostringstream os;
  os << "tenant \"" << tenant << "\" over quota ("
     << entry.bucket.rate_per_s() << " req/s, burst "
     << entry.bucket.burst() << ")";
  return os.str();
}

void TenantTable::record(const std::string& tenant, serve::Status status,
                         double total_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entry_locked(tenant);
  switch (status) {
    case serve::Status::kOk:
      ++entry.stats.completed;
      entry.stats.total_s.add(total_seconds);
      break;
    case serve::Status::kFailed: ++entry.stats.failed; break;
    case serve::Status::kRejected: ++entry.stats.rejected; break;
    case serve::Status::kShutdown: ++entry.stats.shutdown; break;
    case serve::Status::kDeadline: ++entry.stats.deadline_expired; break;
    case serve::Status::kCancelled: ++entry.stats.cancelled; break;
  }
}

std::vector<TenantTable::TenantStats> TenantTable::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const auto& [name, entry] : tenants_) out.push_back(entry.stats);
  return out;
}

void TenantTable::fold_metrics(obs::MetricsRegistry& registry) const {
  // Latency buckets spanning sub-ms plan-cache hits through multi-second
  // cold builds; the exact-quantile gauges below cover SLO points that land
  // between bounds.
  static const std::vector<double> kBounds = {
      1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2,
      5e-2, 0.1,  0.2,  0.5,  1.0,  2.0,  5.0,  10.0};
  for (const TenantStats& t : snapshot()) {
    obs::Labels labels;
    labels.set("tenant", t.tenant);
    registry.counter("tenant_admitted", labels).add(t.admitted);
    registry.counter("tenant_rejected", labels).add(t.rejected);
    registry.counter("tenant_completed", labels).add(t.completed);
    registry.counter("tenant_failed", labels).add(t.failed);
    registry.counter("tenant_deadline", labels).add(t.deadline_expired);
    registry.counter("tenant_cancelled", labels).add(t.cancelled);
    registry.counter("tenant_shutdown", labels).add(t.shutdown);
    obs::Histogram& h =
        registry.histogram("tenant_total_seconds", labels, kBounds);
    for (double s : t.total_s.values()) h.observe(s);
    registry.gauge("tenant_total_p50_s", labels)
        .set(t.total_s.empty() ? 0.0 : t.total_s.quantile(0.5));
    registry.gauge("tenant_total_p99_s", labels)
        .set(t.total_s.empty() ? 0.0 : t.total_s.quantile(0.99));
    registry.gauge("tenant_total_p999_s", labels)
        .set(t.total_s.empty() ? 0.0 : t.total_s.quantile(0.999));
  }
}

int shard_of_fingerprint(std::uint64_t hi, std::uint64_t lo, int shards) {
  PSI_CHECK_MSG(shards >= 1, "shard count must be >= 1, got " << shards);
  std::uint64_t z = hi ^ (lo * 0x9e3779b97f4a7c15ULL);
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<int>(z % static_cast<std::uint64_t>(shards));
}

}  // namespace psi::store
