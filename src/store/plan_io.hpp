/// \file plan_io.hpp
/// \brief The `psi-plan v1` on-disk plan format: a versioned, sectioned,
/// checksummed binary image of a full serve::ServePlan.
///
/// Layout (all integers little-endian, fixed width):
///
///   offset 0   magic           8 bytes  "psiplanf"
///          8   format_version  u32      kFormatVersion
///         12   section_count   u32
///         16   fingerprint.hi  u64      big-endian lanes? No — plain u64 LE;
///         24   fingerprint.lo  u64      the 16-byte canonical encoding lives
///                                       in Fingerprint::to_bytes(), here the
///                                       lanes are ordinary header words.
///         32   section table   section_count x 32 bytes:
///                                {u32 id, u32 reserved, u64 offset,
///                                 u64 length, u64 checksum}
///          +   table_checksum  u64      over bytes [0, 32 + 32*count)
///          +   section payloads at their recorded offsets
///
/// Every section payload is integrity-checked by a 64-bit checksum (one lane
/// of the repo's two-lane fingerprint mixer), and the header + table by
/// table_checksum — so truncation at ANY byte, a flipped bit in any section,
/// a wrong magic/version, or a zero-length file all fail loading with a
/// precise StoreError; decode never crashes on hostile bytes (the reader is
/// bounds-checked everywhere). Sections use fixed-width fields and
/// length-prefixed arrays, so a reader can map the file and jump straight to
/// any section from the table.
///
/// The format is a persistent contract: any change to section contents or
/// ordering of fields MUST bump kFormatVersion (old files are then rejected
/// with a version mismatch, which the plan store treats as a miss → rebuild
/// and overwrite — never a crash, never silent reinterpretation).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "serve/plan_cache.hpp"

namespace psi::store {

/// All load/decode failures (bad magic, version mismatch, truncation,
/// checksum mismatch, malformed section contents). Derives from psi::Error
/// so generic handlers keep working; the message always names the failing
/// section/offset.
class StoreError : public Error {
 public:
  explicit StoreError(const std::string& what) : Error(what) {}
};

inline constexpr char kMagic[8] = {'p', 's', 'i', 'p', 'l', 'a', 'n', 'f'};
inline constexpr std::uint32_t kFormatVersion = 1;

/// Section ids of psi-plan v1. All eight are required; decode rejects files
/// missing any of them (or carrying duplicates).
enum SectionId : std::uint32_t {
  kConfig = 1,       ///< PlanConfig: grid, trees, symmetry, analysis, machine
  kPattern = 2,      ///< permuted pattern (analysis.matrix.pattern)
  kPermutation = 3,  ///< fill ordering old->new
  kEtree = 4,        ///< scalar etree + column counts
  kBlocks = 5,       ///< supernode partition + block structure (CSR)
  kCommPlan = 6,     ///< pselinv::Plan raw parts incl. every CommTree
  kTrace = 7,        ///< cached kTrace DES artifacts + build time
  kScatter = 8,      ///< request-CSR -> block-slot map (fixed-width slots)
};
inline constexpr int kSectionCount = 8;

const char* section_name(std::uint32_t id);

/// Serializes `plan` to a self-contained psi-plan v1 image.
std::vector<std::uint8_t> encode_serve_plan(const serve::ServePlan& plan);

/// Parses and validates a psi-plan v1 image, reconstructing the full plan
/// (symbolic analysis, communication plan with all trees, scatter map,
/// cached trace artifacts) without re-running any of the build pipeline.
/// Throws StoreError (or psi::Error from the reassembly validators) on any
/// malformed input; never crashes or reads out of bounds.
std::shared_ptr<const serve::ServePlan> decode_serve_plan(
    const std::uint8_t* data, std::size_t size);
inline std::shared_ptr<const serve::ServePlan> decode_serve_plan(
    const std::vector<std::uint8_t>& bytes) {
  return decode_serve_plan(bytes.data(), bytes.size());
}

/// Reads just the fingerprint from an image's header (cheap routing /
/// inventory listing); validates magic, version, and the header checksum.
serve::Fingerprint peek_fingerprint(const std::uint8_t* data,
                                    std::size_t size);

/// Canonical byte encoding of a PlanConfig (the kConfig section payload).
/// Two configs are store-compatible iff their encodings are byte-equal —
/// the plan store uses this to reject plans built for a different simulated
/// machine (the fingerprint does not cover the machine).
std::vector<std::uint8_t> encode_plan_config(const serve::PlanConfig& config);

}  // namespace psi::store
