/// \file filesystem.hpp
/// \brief Injectable filesystem seam under the plan store.
///
/// PlanStore does all of its I/O through this interface so that (a) the
/// durability discipline — write to a temporary name, fsync, rename over the
/// final name — lives in ONE place and is testable, and (b) the chaos
/// harness (psi::chaos) can wrap the real filesystem with seeded fault
/// injection (transient read errors, failed writes/renames, torn writes)
/// without touching the store logic it is trying to break.
///
/// Error contract: no method throws. Failures return false / kError with a
/// human-readable message in `*error`; callers decide whether a failure is
/// transient (retry) or terminal (miss / quarantine). kNotFound is NOT an
/// error — it is the plain-miss signal the store's read path branches on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace psi::store {

class FileSystem {
 public:
  enum class ReadResult {
    kOk,        ///< `out` holds the full file contents
    kNotFound,  ///< no such file (plain miss, not a failure)
    kError,     ///< I/O error; `*error` says why (possibly transient)
  };

  virtual ~FileSystem() = default;

  /// Reads the whole file at `path` into `out` (replaced, not appended).
  virtual ReadResult read_file(const std::string& path,
                               std::vector<std::uint8_t>& out,
                               std::string* error) = 0;

  /// Writes `size` bytes to `path`, truncating. When `sync` is set the data
  /// is fsync'd to stable storage before returning — publish paths set it so
  /// a rename never exposes a name whose bytes could still be lost.
  virtual bool write_file(const std::string& path, const void* data,
                          std::size_t size, bool sync, std::string* error) = 0;

  /// Atomically renames `from` over `to` (POSIX rename semantics: `to` is
  /// replaced as a unit; readers see the old or the new file, never a mix).
  virtual bool rename_file(const std::string& from, const std::string& to,
                           std::string* error) = 0;

  /// Removes the file at `path`. Missing file counts as success.
  virtual bool remove_file(const std::string& path, std::string* error) = 0;

  /// Creates `path` and any missing parents. Existing directory is success.
  virtual bool create_directories(const std::string& path,
                                  std::string* error) = 0;

  /// File names (not paths, no directories) directly inside `dir`, sorted.
  /// A missing/unreadable directory returns false with a reason.
  virtual bool list_dir(const std::string& dir, std::vector<std::string>& out,
                        std::string* error) = 0;

  /// Flushes `dir`'s entry table to stable storage (directory fsync) so a
  /// just-renamed name survives a crash. Best-effort on platforms without
  /// directory fds; returns false only on a real error.
  virtual bool sync_dir(const std::string& dir, std::string* error) = 0;
};

/// The real filesystem (std::filesystem + POSIX fsync where available).
class RealFileSystem : public FileSystem {
 public:
  ReadResult read_file(const std::string& path, std::vector<std::uint8_t>& out,
                       std::string* error) override;
  bool write_file(const std::string& path, const void* data, std::size_t size,
                  bool sync, std::string* error) override;
  bool rename_file(const std::string& from, const std::string& to,
                   std::string* error) override;
  bool remove_file(const std::string& path, std::string* error) override;
  bool create_directories(const std::string& path,
                          std::string* error) override;
  bool list_dir(const std::string& dir, std::vector<std::string>& out,
                std::string* error) override;
  bool sync_dir(const std::string& dir, std::string* error) override;
};

/// Process-wide RealFileSystem instance (stateless; shareable).
FileSystem& real_filesystem();

}  // namespace psi::store
