/// \file admission.hpp
/// \brief Multi-tenant admission primitives for the sharded serving front
/// end: per-tenant token-bucket quotas with reject-with-reason, per-tenant
/// SLO accounting (exact p99/p999 latency), and the fingerprint -> shard
/// routing function.
///
/// Determinism note: routing is a pure function of the fingerprint, so a
/// structure always lands on the same shard — per-shard plan caches never
/// duplicate a plan, and the response content stays independent of the
/// shard count (the digest-equality tests sweep shard counts to prove it).
/// Quotas are the only wall-clock-dependent admission input; tests drive
/// them through the explicit-time entry points.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "sparse/types.hpp"

namespace psi::serve {
enum class Status;  // serve/service.hpp — keep this header light
}

namespace psi::store {

/// Classic token bucket: `rate_per_s` tokens accrue per second up to
/// `burst`; a request takes one token. rate_per_s <= 0 means unlimited.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_per_s, double burst);

  /// Takes one token if available at time `now_s` (monotone seconds; calls
  /// with decreasing time are treated as no elapsed time). Returns false
  /// when the bucket is empty.
  bool try_take(double now_s);

  double rate_per_s() const { return rate_per_s_; }
  double burst() const { return burst_; }
  /// Tokens available at `now_s` (diagnostics/tests; does not take).
  double available(double now_s) const;

 private:
  void refill(double now_s);

  double rate_per_s_ = 0.0;  ///< <= 0: unlimited
  double burst_ = 1.0;
  double tokens_ = 1.0;
  double last_s_ = 0.0;
};

/// Per-tenant quota configuration. rate_per_s <= 0 admits everything.
struct TenantQuota {
  double rate_per_s = 0.0;
  double burst = 8.0;
};

/// Validated construction for user-supplied quota arguments (psi_serve
/// flags): rejects NaN or negative rate/burst with a message naming the
/// offending value — dist::validated_grid style — instead of silently
/// clamping or misbehaving deep inside the token bucket. rate 0 stays the
/// "unlimited" sentinel; burst below 1 is rejected (a bucket that can never
/// hold a whole token admits nothing).
TenantQuota validated_quota(double rate_per_s, double burst);

/// Thread-safe per-tenant admission + SLO accounting table. Tenants are
/// created lazily on first sight with the default quota (unless an explicit
/// override was configured).
class TenantTable {
 public:
  struct TenantStats {
    std::string tenant;
    Count admitted = 0;
    /// Quota rejections at admission plus downstream kRejected responses
    /// (queue full, watchdog failover) — a request counts in exactly one.
    Count rejected = 0;
    Count completed = 0;         ///< kOk responses recorded
    Count failed = 0;            ///< kFailed responses
    Count deadline_expired = 0;  ///< kDeadline responses
    Count cancelled = 0;         ///< kCancelled responses
    Count shutdown = 0;          ///< kShutdown responses
    SampleStats total_s;  ///< end-to-end latency of ok responses
  };

  TenantTable(const TenantQuota& default_quota,
              const std::map<std::string, TenantQuota>& overrides);

  /// Admission check against the wall clock. Returns nullopt to admit, or
  /// the reject reason (naming the tenant and its quota). Counts the
  /// decision either way.
  std::optional<std::string> try_admit(const std::string& tenant);
  /// Deterministic-time variant for tests.
  std::optional<std::string> try_admit_at(const std::string& tenant,
                                          double now_s);

  /// Records a finished request's terminal outcome for SLO accounting (kOk
  /// responses feed the latency sample; every status bumps exactly one
  /// per-tenant counter — the one-terminal-outcome invariant is auditable
  /// from the tenant table alone).
  void record(const std::string& tenant, serve::Status status,
              double total_seconds);

  std::vector<TenantStats> snapshot() const;

  /// Per-tenant counters, latency histograms, and exact p99/p999 gauges
  /// ("tenant_*", labelled tenant=<name>). Call between request waves.
  void fold_metrics(obs::MetricsRegistry& registry) const;

 private:
  struct Entry {
    TokenBucket bucket;
    TenantStats stats;
  };

  Entry& entry_locked(const std::string& tenant);

  TenantQuota default_quota_;
  std::map<std::string, TenantQuota> overrides_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> tenants_;  ///< ordered: stable export order
  WallTimer clock_;                       ///< epoch for try_admit()
};

/// Shard owning `fingerprint` among `shards` pools: a splitmix64-style
/// finalizer over both lanes, mod shards. Deterministic and uniform; pure.
int shard_of_fingerprint(std::uint64_t hi, std::uint64_t lo, int shards);

}  // namespace psi::store
