/// \file plan_store.hpp
/// \brief Directory-backed persistent plan store (serve::PlanStorage
/// implementation): one psi-plan v1 file per fingerprint, atomic
/// write-then-rename publishing, checksum-verified loads that degrade to a
/// miss (never a crash) on any corrupt, truncated, or version-mismatched
/// file.
///
/// The store is what survives a service restart: serve::PlanCache reads
/// through it on a memory miss (a warm restart is a disk load, not a
/// rebuild) and writes through on every fresh build. Plans are keyed by
/// their 128-bit structure fingerprint — the file for fingerprint F is
/// `<dir>/<F.hex()>.plan` — so the directory is shareable between any
/// services running the SAME PlanConfig. Configs are checked on load: the
/// fingerprint does not cover the simulated machine, and a plan's cached
/// kTrace makespan is machine-specific, so a file whose config section
/// differs from this store's expected config is rejected with a reason
/// (counted, never fatal).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/plan_cache.hpp"

namespace psi::store {

class PlanStore : public serve::PlanStorage {
 public:
  struct Config {
    std::string directory;  ///< created (recursively) if missing
    /// Reject publishes (a replica serving from a shared, pre-baked plan
    /// directory). Loads are unaffected.
    bool read_only = false;
    /// The PlanConfig this store's plans must have been built under; loads
    /// of files with any other config are rejected. (Within one service
    /// this always matches — the guard catches directories shared across
    /// differently-configured deployments.)
    serve::PlanConfig expected;
  };

  struct Stats {
    Count fetches = 0;        ///< fetch() calls
    Count hits = 0;           ///< fetches returning a plan
    Count misses = 0;         ///< no file for the fingerprint
    Count load_failures = 0;  ///< file present but rejected (corrupt/...)
    Count publishes = 0;      ///< successful publish() calls
    Count publish_failures = 0;
    Count bytes_read = 0;
    Count bytes_written = 0;
    std::string last_error;  ///< most recent load/publish failure reason
  };

  /// Throws psi::Error if the directory cannot be created.
  explicit PlanStore(const Config& config);

  const Config& config() const { return config_; }

  /// serve::PlanStorage: checksum-verified load. Missing file -> nullptr
  /// with `reason` untouched (plain miss); unreadable/corrupt/truncated/
  /// version-mismatched/config-mismatched file -> nullptr with the precise
  /// reason. Never throws.
  std::shared_ptr<const serve::ServePlan> fetch(const serve::Fingerprint& fp,
                                                std::string* reason) override;

  /// serve::PlanStorage: atomic publish — encode to `<file>.tmp`, fsync-free
  /// rename over the final name (a crash mid-write never leaves a partial
  /// file under a live name; a partial tmp file is invisible to fetch and
  /// overwritten by the next publish). Returns false with a reason on any
  /// failure (read-only store, I/O error). Never throws.
  bool publish(const serve::ServePlan& plan, std::string* reason) override;

  /// Path the plan for `fp` lives at (exists or not) — tests use this to
  /// corrupt files deliberately.
  std::string path_for(const serve::Fingerprint& fp) const;

  /// Fingerprints with a plan file currently in the directory (by file
  /// name; contents are not verified). Sorted.
  std::vector<serve::Fingerprint> list() const;

  Stats stats() const;

  /// Adds the store counters ("store_*") to `registry`. Not thread-safe
  /// (MetricsRegistry); call between request waves.
  void fold_metrics(obs::MetricsRegistry& registry) const;

 private:
  Config config_;
  std::vector<std::uint8_t> expected_config_bytes_;
  mutable std::mutex mutex_;  ///< guards stats_ only; I/O runs unlocked
  Stats stats_;
};

}  // namespace psi::store
