/// \file plan_store.hpp
/// \brief Directory-backed persistent plan store (serve::PlanStorage
/// implementation): one psi-plan v1 file per fingerprint, crash-consistent
/// write-fsync-rename publishing, checksum-verified loads that degrade to a
/// miss (never a crash) on any corrupt, truncated, or version-mismatched
/// file, bounded retry on transient read errors, and a startup scan that
/// quarantines damaged or foreign files instead of serving (or deleting)
/// them.
///
/// The store is what survives a service restart: serve::PlanCache reads
/// through it on a memory miss (a warm restart is a disk load, not a
/// rebuild) and writes through on every fresh build. Plans are keyed by
/// their 128-bit structure fingerprint — the file for fingerprint F is
/// `<dir>/<F.hex()>.plan` — so the directory is shareable between any
/// services running the SAME PlanConfig. Configs are checked on load: the
/// fingerprint does not cover the simulated machine, and a plan's cached
/// kTrace makespan is machine-specific, so a file whose config section
/// differs from this store's expected config is rejected with a reason
/// (counted, never fatal).
///
/// All I/O goes through the injectable store::FileSystem seam, so the
/// durability discipline is testable and the chaos harness can inject
/// failures (transient read errors, failed writes/renames, torn writes)
/// underneath an otherwise untouched store.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/plan_cache.hpp"
#include "store/filesystem.hpp"

namespace psi::store {

class PlanStore : public serve::PlanStorage {
 public:
  struct Config {
    std::string directory;  ///< created (recursively) if missing
    /// Reject publishes (a replica serving from a shared, pre-baked plan
    /// directory). Loads are unaffected. Read-only stores also never scan:
    /// they must not move (quarantine) files another process owns.
    bool read_only = false;
    /// The PlanConfig this store's plans must have been built under; loads
    /// of files with any other config are rejected. (Within one service
    /// this always matches — the guard catches directories shared across
    /// differently-configured deployments.)
    serve::PlanConfig expected;
    /// Filesystem seam; null uses real_filesystem(). Not owned.
    FileSystem* fs = nullptr;
    /// Run scan() at construction (skipped when read_only): quarantine
    /// corrupt/torn/foreign files before the first fetch can trip on them.
    bool scan_on_open = true;
    /// Extra read attempts after a transient I/O error (kError, not a plain
    /// miss) before fetch gives up and reports a load failure.
    int read_retries = 2;
    /// Base backoff before retry attempt k (doubles each attempt:
    /// base * 2^(k-1)). 0 disables sleeping (tests).
    double retry_backoff_seconds = 1e-3;
  };

  struct Stats {
    Count fetches = 0;        ///< fetch() calls
    Count hits = 0;           ///< fetches returning a plan
    Count misses = 0;         ///< no file for the fingerprint
    Count load_failures = 0;  ///< file present but rejected (corrupt/...)
    Count read_retries = 0;   ///< transient-error retry attempts
    Count publishes = 0;      ///< successful publish() calls
    Count publish_failures = 0;
    Count quarantined = 0;    ///< files moved to quarantine/ by scan()
    Count bytes_read = 0;
    Count bytes_written = 0;
    std::string last_error;  ///< most recent load/publish failure reason
  };

  /// What a startup/explicit scan() found. Config-mismatched but otherwise
  /// valid plans are counted and LEFT IN PLACE (they belong to a sibling
  /// deployment sharing the directory); everything damaged or foreign is
  /// moved — never deleted — into `<dir>/quarantine/` next to a
  /// `<name>.reason` text file naming the precise failure.
  struct ScanReport {
    Count scanned = 0;          ///< regular files examined
    Count plans_ok = 0;         ///< valid plans left in place
    Count config_mismatch = 0;  ///< valid plans for another config (left)
    Count quarantined = 0;
    /// (file name, reason) for every quarantined file, in scan order.
    std::vector<std::pair<std::string, std::string>> quarantined_files;
  };

  /// Throws psi::Error if the directory cannot be created.
  explicit PlanStore(const Config& config);

  const Config& config() const { return config_; }

  /// serve::PlanStorage: checksum-verified load. Missing file -> nullptr
  /// with `reason` untouched (plain miss); unreadable/corrupt/truncated/
  /// version-mismatched/config-mismatched file -> nullptr with the precise
  /// reason. Transient read errors are retried (Config::read_retries, with
  /// doubling backoff) before being declared a load failure. Never throws.
  std::shared_ptr<const serve::ServePlan> fetch(const serve::Fingerprint& fp,
                                                std::string* reason) override;

  /// serve::PlanStorage: crash-consistent publish — encode to `<file>.tmp`,
  /// fsync the data, rename over the final name, fsync the directory. A
  /// crash at ANY point leaves either the old file, the new file, or an
  /// orphaned tmp (which scan() quarantines) — never a torn live name.
  /// Returns false with a reason on any failure (read-only store, I/O
  /// error). Never throws.
  bool publish(const serve::ServePlan& plan, std::string* reason) override;

  /// Scans the directory, quarantining corrupt/torn/foreign files (see
  /// ScanReport). Safe to call repeatedly; read-only stores refuse (empty
  /// report). Never throws, never deletes.
  ScanReport scan();

  /// Path the plan for `fp` lives at (exists or not) — tests use this to
  /// corrupt files deliberately.
  std::string path_for(const serve::Fingerprint& fp) const;

  /// Where scan() moves damaged files: `<directory>/quarantine`.
  std::string quarantine_dir() const;

  /// Fingerprints with a plan file currently in the directory (by file
  /// name; contents are not verified). Sorted.
  std::vector<serve::Fingerprint> list() const;

  Stats stats() const;

  /// Adds the store counters ("store_*") to `registry`. Not thread-safe
  /// (MetricsRegistry); call between request waves.
  void fold_metrics(obs::MetricsRegistry& registry) const;

 private:
  /// Moves `name` into quarantine/ with a .reason file; best-effort (a
  /// failed move leaves the file where it was and records the failure).
  void quarantine_file(const std::string& name, const std::string& reason,
                       ScanReport& report);

  Config config_;
  FileSystem* fs_ = nullptr;  ///< resolved from Config (never null)
  std::vector<std::uint8_t> expected_config_bytes_;
  mutable std::mutex mutex_;  ///< guards stats_ only; I/O runs unlocked
  Stats stats_;
};

}  // namespace psi::store
