#include "store/plan_store.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "common/check.hpp"
#include "store/plan_io.hpp"

namespace psi::store {

namespace fs = std::filesystem;

PlanStore::PlanStore(const Config& config)
    : config_(config),
      expected_config_bytes_(encode_plan_config(config.expected)) {
  PSI_CHECK_MSG(!config_.directory.empty(), "plan store needs a directory");
  std::error_code ec;
  fs::create_directories(config_.directory, ec);
  PSI_CHECK_MSG(!ec, "cannot create plan directory " << config_.directory
                                                     << ": " << ec.message());
}

std::string PlanStore::path_for(const serve::Fingerprint& fp) const {
  return (fs::path(config_.directory) / (fp.hex() + ".plan")).string();
}

std::shared_ptr<const serve::ServePlan> PlanStore::fetch(
    const serve::Fingerprint& fp, std::string* reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.fetches;
  }
  const std::string path = path_for(fp);
  std::string why;
  std::shared_ptr<const serve::ServePlan> plan;
  bool present = false;
  try {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      // Plain miss: leave `reason` untouched so the cache counts it as a
      // miss, not a failure.
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
      return nullptr;
    }
    present = true;
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
    if (in.bad()) throw StoreError("read error on " + path);
    plan = decode_serve_plan(bytes.data(), bytes.size());
    if (plan->fingerprint != fp)
      throw StoreError("file " + path + " carries fingerprint " +
                       plan->fingerprint.hex() + ", expected " + fp.hex());
    if (encode_plan_config(plan->config) != expected_config_bytes_)
      throw StoreError(
          "file " + path +
          " was built under a different configuration (machine/grid/"
          "analysis mismatch); refusing its cached schedule artifacts");
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    stats_.bytes_read += static_cast<Count>(bytes.size());
    return plan;
  } catch (const std::exception& e) {
    why = e.what();
  } catch (...) {
    why = "unknown error decoding " + path;
  }
  if (reason != nullptr) *reason = why;
  std::lock_guard<std::mutex> lock(mutex_);
  if (present)
    ++stats_.load_failures;
  else
    ++stats_.misses;
  stats_.last_error = why;
  return nullptr;
}

bool PlanStore::publish(const serve::ServePlan& plan, std::string* reason) {
  std::string why;
  try {
    if (config_.read_only) throw StoreError("plan store is read-only");
    const std::string path = path_for(plan.fingerprint);
    const std::string tmp = path + ".tmp";
    const std::vector<std::uint8_t> bytes = encode_serve_plan(plan);
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) throw StoreError("cannot open " + tmp + " for writing");
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
      out.flush();
      if (!out) throw StoreError("write error on " + tmp);
    }
    // Atomic publish: readers only ever see the final name complete.
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      throw StoreError("rename " + tmp + " -> " + path + " failed");
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.publishes;
    stats_.bytes_written += static_cast<Count>(bytes.size());
    return true;
  } catch (const std::exception& e) {
    why = e.what();
  } catch (...) {
    why = "unknown error publishing plan";
  }
  if (reason != nullptr) *reason = why;
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.publish_failures;
  stats_.last_error = why;
  return false;
}

std::vector<serve::Fingerprint> PlanStore::list() const {
  std::vector<serve::Fingerprint> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config_.directory, ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path p = entry.path();
    if (p.extension() != ".plan") continue;
    if (auto fp = serve::Fingerprint::from_hex(p.stem().string()))
      out.push_back(*fp);
  }
  std::sort(out.begin(), out.end(),
            [](const serve::Fingerprint& a, const serve::Fingerprint& b) {
              return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
            });
  return out;
}

PlanStore::Stats PlanStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void PlanStore::fold_metrics(obs::MetricsRegistry& registry) const {
  const Stats s = stats();
  registry.counter("store_fetches").add(s.fetches);
  registry.counter("store_fetch_hits").add(s.hits);
  registry.counter("store_fetch_misses").add(s.misses);
  registry.counter("store_load_failures").add(s.load_failures);
  registry.counter("store_publishes").add(s.publishes);
  registry.counter("store_publish_failures").add(s.publish_failures);
  registry.counter("store_bytes_read").add(s.bytes_read);
  registry.counter("store_bytes_written").add(s.bytes_written);
}

}  // namespace psi::store
