#include "store/plan_store.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "store/plan_io.hpp"

namespace psi::store {

namespace fs = std::filesystem;

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

PlanStore::PlanStore(const Config& config)
    : config_(config),
      fs_(config.fs != nullptr ? config.fs : &real_filesystem()),
      expected_config_bytes_(encode_plan_config(config.expected)) {
  PSI_CHECK_MSG(!config_.directory.empty(), "plan store needs a directory");
  PSI_CHECK_MSG(config_.read_retries >= 0, "read_retries must be >= 0");
  std::string error;
  PSI_CHECK_MSG(fs_->create_directories(config_.directory, &error),
                "cannot create plan directory " << config_.directory << ": "
                                                << error);
  if (config_.scan_on_open && !config_.read_only) scan();
}

std::string PlanStore::path_for(const serve::Fingerprint& fp) const {
  return (fs::path(config_.directory) / (fp.hex() + ".plan")).string();
}

std::string PlanStore::quarantine_dir() const {
  return (fs::path(config_.directory) / "quarantine").string();
}

std::shared_ptr<const serve::ServePlan> PlanStore::fetch(
    const serve::Fingerprint& fp, std::string* reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.fetches;
  }
  const std::string path = path_for(fp);
  std::string why;
  std::shared_ptr<const serve::ServePlan> plan;
  bool present = false;
  try {
    std::vector<std::uint8_t> bytes;
    std::string io_error;
    FileSystem::ReadResult rr = FileSystem::ReadResult::kError;
    // A transient I/O error (kError) is retried with doubling backoff; a
    // plain miss (kNotFound) is final immediately.
    for (int attempt = 0; attempt <= config_.read_retries; ++attempt) {
      if (attempt > 0) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.read_retries;
        }
        const double backoff =
            config_.retry_backoff_seconds *
            static_cast<double>(std::uint64_t{1} << (attempt - 1));
        if (backoff > 0.0)
          std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
      rr = fs_->read_file(path, bytes, &io_error);
      if (rr != FileSystem::ReadResult::kError) break;
    }
    if (rr == FileSystem::ReadResult::kNotFound) {
      // Plain miss: leave `reason` untouched so the cache counts it as a
      // miss, not a failure.
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
      return nullptr;
    }
    present = true;
    if (rr == FileSystem::ReadResult::kError)
      throw StoreError("read failed after " +
                       std::to_string(config_.read_retries + 1) +
                       " attempts: " + io_error);
    plan = decode_serve_plan(bytes.data(), bytes.size());
    if (plan->fingerprint != fp)
      throw StoreError("file " + path + " carries fingerprint " +
                       plan->fingerprint.hex() + ", expected " + fp.hex());
    if (encode_plan_config(plan->config) != expected_config_bytes_)
      throw StoreError(
          "file " + path +
          " was built under a different configuration (machine/grid/"
          "analysis mismatch); refusing its cached schedule artifacts");
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    stats_.bytes_read += static_cast<Count>(bytes.size());
    return plan;
  } catch (const std::exception& e) {
    why = e.what();
  } catch (...) {
    why = "unknown error decoding " + path;
  }
  if (reason != nullptr) *reason = why;
  std::lock_guard<std::mutex> lock(mutex_);
  if (present)
    ++stats_.load_failures;
  else
    ++stats_.misses;
  stats_.last_error = why;
  return nullptr;
}

bool PlanStore::publish(const serve::ServePlan& plan, std::string* reason) {
  std::string why;
  try {
    if (config_.read_only) throw StoreError("plan store is read-only");
    const std::string path = path_for(plan.fingerprint);
    const std::string tmp = path + ".tmp";
    const std::vector<std::uint8_t> bytes = encode_serve_plan(plan);
    std::string error;
    // Crash-consistency order: (1) data to the tmp name, fsync'd, so the
    // bytes are durable BEFORE any live name can point at them; (2) atomic
    // rename over the final name; (3) directory fsync so the rename itself
    // survives a crash. A failure at any step leaves at worst an orphaned
    // tmp, which the startup scan quarantines.
    if (!fs_->write_file(tmp, bytes.data(), bytes.size(), /*sync=*/true,
                         &error)) {
      fs_->remove_file(tmp, nullptr);
      throw StoreError(error);
    }
    if (!fs_->rename_file(tmp, path, &error)) {
      fs_->remove_file(tmp, nullptr);
      throw StoreError(error);
    }
    fs_->sync_dir(config_.directory, nullptr);  // best-effort durability
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.publishes;
    stats_.bytes_written += static_cast<Count>(bytes.size());
    return true;
  } catch (const std::exception& e) {
    why = e.what();
  } catch (...) {
    why = "unknown error publishing plan";
  }
  if (reason != nullptr) *reason = why;
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.publish_failures;
  stats_.last_error = why;
  return false;
}

void PlanStore::quarantine_file(const std::string& name,
                                const std::string& reason,
                                ScanReport& report) {
  std::string error;
  if (!fs_->create_directories(quarantine_dir(), &error)) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.last_error = "quarantine: " + error;
    return;
  }
  const std::string from = (fs::path(config_.directory) / name).string();
  // Pick a destination name that does not clobber an earlier quarantine of
  // the same file (never destroy evidence).
  std::string dest_name = name;
  for (int i = 1;; ++i) {
    const std::string candidate =
        (fs::path(quarantine_dir()) / dest_name).string();
    std::vector<std::uint8_t> probe;
    if (fs_->read_file(candidate, probe, nullptr) ==
        FileSystem::ReadResult::kNotFound)
      break;
    dest_name = name + "." + std::to_string(i);
  }
  const std::string dest = (fs::path(quarantine_dir()) / dest_name).string();
  if (!fs_->rename_file(from, dest, &error)) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.last_error = "quarantine: " + error;
    return;
  }
  // Companion reason file: precise, human-readable, best-effort.
  const std::string note = reason + "\n";
  fs_->write_file(dest + ".reason", note.data(), note.size(), /*sync=*/false,
                  nullptr);
  ++report.quarantined;
  report.quarantined_files.emplace_back(name, reason);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.quarantined;
}

PlanStore::ScanReport PlanStore::scan() {
  ScanReport report;
  if (config_.read_only) return report;  // never move files we don't own
  std::vector<std::string> names;
  std::string error;
  if (!fs_->list_dir(config_.directory, names, &error)) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.last_error = "scan: " + error;
    return report;
  }
  for (const std::string& name : names) {
    ++report.scanned;
    if (ends_with(name, ".tmp")) {
      quarantine_file(name, "orphaned temporary from an interrupted publish",
                      report);
      continue;
    }
    if (!ends_with(name, ".plan")) {
      quarantine_file(name,
                      "foreign file: not a psi-plan name (*.plan) — moved "
                      "aside, never deleted",
                      report);
      continue;
    }
    const std::string stem = name.substr(0, name.size() - 5);
    const auto named_fp = serve::Fingerprint::from_hex(stem);
    if (!named_fp) {
      quarantine_file(
          name, "plan file name is not a 32-hex-digit fingerprint", report);
      continue;
    }
    const std::string path = (fs::path(config_.directory) / name).string();
    std::vector<std::uint8_t> bytes;
    std::string io_error;
    const FileSystem::ReadResult rr = fs_->read_file(path, bytes, &io_error);
    if (rr != FileSystem::ReadResult::kOk) {
      // Unreadable at scan time: leave it — fetch() retries transient
      // errors with backoff; quarantining on a flaky read would destroy a
      // possibly healthy plan's availability.
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.last_error = "scan: " + io_error;
      continue;
    }
    try {
      const auto plan = decode_serve_plan(bytes.data(), bytes.size());
      if (plan->fingerprint != *named_fp) {
        quarantine_file(name,
                        "fingerprint mismatch: file is named " + stem +
                            " but carries " + plan->fingerprint.hex(),
                        report);
        continue;
      }
      if (encode_plan_config(plan->config) != expected_config_bytes_) {
        // Valid plan for a differently-configured deployment sharing this
        // directory: counted, left in place (fetch rejects it with a
        // reason; it is not ours to move).
        ++report.config_mismatch;
        continue;
      }
      ++report.plans_ok;
    } catch (const std::exception& e) {
      quarantine_file(name, std::string("corrupt plan: ") + e.what(), report);
    }
  }
  return report;
}

std::vector<serve::Fingerprint> PlanStore::list() const {
  std::vector<serve::Fingerprint> out;
  std::vector<std::string> names;
  if (!fs_->list_dir(config_.directory, names, nullptr)) return out;
  for (const std::string& name : names) {
    if (!ends_with(name, ".plan")) continue;
    if (auto fp = serve::Fingerprint::from_hex(name.substr(0, name.size() - 5)))
      out.push_back(*fp);
  }
  std::sort(out.begin(), out.end(),
            [](const serve::Fingerprint& a, const serve::Fingerprint& b) {
              return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
            });
  return out;
}

PlanStore::Stats PlanStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void PlanStore::fold_metrics(obs::MetricsRegistry& registry) const {
  const Stats s = stats();
  registry.counter("store_fetches").add(s.fetches);
  registry.counter("store_fetch_hits").add(s.hits);
  registry.counter("store_fetch_misses").add(s.misses);
  registry.counter("store_load_failures").add(s.load_failures);
  registry.counter("store_read_retries").add(s.read_retries);
  registry.counter("store_publishes").add(s.publishes);
  registry.counter("store_publish_failures").add(s.publish_failures);
  registry.counter("store_quarantined").add(s.quarantined);
  registry.counter("store_bytes_read").add(s.bytes_read);
  registry.counter("store_bytes_written").add(s.bytes_written);
}

}  // namespace psi::store
