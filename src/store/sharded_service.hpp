/// \file sharded_service.hpp
/// \brief Sharded multi-tenant serving front end: per-tenant token-quota
/// admission, fingerprint-sharded routing over independent worker pools,
/// and a shared persistent plan store behind every shard's cache.
///
/// Each shard is a complete serve::Service (its own admission queue, worker
/// pool, and plan cache). A request routes by a pure hash of its structure
/// fingerprint, so one structure always lands on one shard — plan caches
/// never hold duplicates, cross-shard coordination is zero, and responses
/// stay bitwise identical for any shard count (the fingerprint decides the
/// plan, never the shard). Tenant quotas gate BEFORE routing; a rejected
/// request costs no queue slot anywhere. All shards share one PlanStore, so
/// a restart of the whole front end warms every shard from disk.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serve/service.hpp"
#include "store/admission.hpp"
#include "store/plan_store.hpp"

namespace psi::store {

class ShardedService : public serve::RequestSink {
 public:
  struct Config {
    int shards = 1;
    /// Template for every shard; ShardedService overrides per shard: the
    /// `shard` label, `cache.storage` (pointed at the shared PlanStore when
    /// `plan_dir` is set), the observer (tenant SLO accounting is chained in
    /// front of any caller-provided observer), and `access_log_path` (suffix
    /// ".s<k>" per shard when shards > 1, so logs never interleave).
    serve::Service::Config service;
    /// Plan-store directory; "" runs without persistence.
    std::string plan_dir;
    bool read_only_store = false;
    /// Filesystem seam handed to the shared PlanStore (chaos injection);
    /// null uses the real filesystem. Not owned.
    FileSystem* store_fs = nullptr;
    /// Forwarded to PlanStore::Config::scan_on_open.
    bool store_scan_on_open = true;
    TenantQuota default_quota;  ///< rate 0 = unlimited (default)
    std::map<std::string, TenantQuota> tenant_quotas;
  };

  /// Throws psi::Error on invalid configuration (shards < 1, bad plan dir).
  explicit ShardedService(const Config& config);

  /// Quota-gates, routes by fingerprint, and delegates to the owning shard.
  /// Quota rejections fulfil the future immediately with kRejected and the
  /// reason in Response::detail.
  std::future<serve::Response> submit(serve::Request request) override;

  /// Graceful lifecycle: drains every shard CONCURRENTLY (one thread per
  /// shard), so the wall time is bounded by the slowest shard's timeout,
  /// not the sum. Returns the aggregate: completed iff every shard
  /// completed, hard_failed summed, waited_seconds = max over shards.
  serve::Service::DrainReport drain(double timeout_seconds);

  /// Stops every shard (idempotent; the destructor calls it).
  void shutdown();

  int shards() const { return static_cast<int>(services_.size()); }
  serve::Service& shard(int s) { return *services_[static_cast<std::size_t>(s)]; }
  /// Shard that requests with fingerprint `fp` route to.
  int shard_of(const serve::Fingerprint& fp) const;

  /// The shared plan store, or nullptr when running without persistence.
  PlanStore* plan_store() { return store_ ? &*store_ : nullptr; }
  TenantTable& tenants() { return tenants_; }

  /// Element-wise sums over all shards.
  serve::PlanCache::Stats cache_stats() const;
  serve::Service::Counters counters() const;
  /// Quota rejections made here, before any shard saw the request.
  Count quota_rejected() const;

  /// Folds every shard's service/cache metrics (counters sum across
  /// shards), the per-tenant admission/SLO metrics, and the plan-store
  /// counters into `registry`. Call after shutdown() or between waves.
  void fold_metrics(obs::MetricsRegistry& registry) const;

 private:
  Config config_;
  std::optional<PlanStore> store_;  ///< before services_ (they point at it)
  TenantTable tenants_;
  std::vector<std::unique_ptr<serve::Service>> services_;
  mutable std::mutex mutex_;
  Count quota_rejected_ = 0;
};

}  // namespace psi::store
