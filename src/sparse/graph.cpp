#include "sparse/graph.hpp"

#include <algorithm>
#include <queue>

#include "common/check.hpp"

namespace psi {

Graph::Graph(const SparsityPattern& pattern) {
  n_ = pattern.n;
  adj_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  // Count off-diagonal entries per column (pattern is symmetric so the
  // column structure doubles as the row structure).
  for (Int j = 0; j < n_; ++j) {
    Int deg = 0;
    for (Int p = pattern.col_ptr[j]; p < pattern.col_ptr[j + 1]; ++p)
      if (pattern.row_idx[p] != j) ++deg;
    adj_ptr_[static_cast<std::size_t>(j) + 1] = deg;
  }
  for (Int j = 0; j < n_; ++j)
    adj_ptr_[static_cast<std::size_t>(j) + 1] += adj_ptr_[static_cast<std::size_t>(j)];
  adj_.resize(static_cast<std::size_t>(adj_ptr_[static_cast<std::size_t>(n_)]));
  std::vector<Int> next(adj_ptr_.begin(), adj_ptr_.end() - 1);
  for (Int j = 0; j < n_; ++j)
    for (Int p = pattern.col_ptr[j]; p < pattern.col_ptr[j + 1]; ++p) {
      const Int i = pattern.row_idx[p];
      if (i != j) adj_[static_cast<std::size_t>(next[static_cast<std::size_t>(j)]++)] = i;
    }
}

Graph::Graph(Int n, std::vector<Int> adj_ptr, std::vector<Int> adj)
    : n_(n), adj_ptr_(std::move(adj_ptr)), adj_(std::move(adj)) {
  PSI_CHECK(adj_ptr_.size() == static_cast<std::size_t>(n_) + 1);
  PSI_CHECK(adj_ptr_.back() == static_cast<Int>(adj_.size()));
}

Graph Graph::induced_subgraph(const std::vector<Int>& vertices,
                              std::vector<Int>& local_of) const {
  local_of.assign(static_cast<std::size_t>(n_), -1);
  for (std::size_t k = 0; k < vertices.size(); ++k)
    local_of[static_cast<std::size_t>(vertices[k])] = static_cast<Int>(k);

  std::vector<Int> ptr(vertices.size() + 1, 0);
  std::vector<Int> adj;
  for (std::size_t k = 0; k < vertices.size(); ++k) {
    const Int v = vertices[k];
    for (const Int* u = neighbors_begin(v); u != neighbors_end(v); ++u) {
      const Int lu = local_of[static_cast<std::size_t>(*u)];
      if (lu >= 0) adj.push_back(lu);
    }
    // Local ids are not monotone in global ids when `vertices` is unsorted;
    // restore the sorted-neighbors invariant every Graph guarantees.
    std::sort(adj.begin() + ptr[k], adj.end());
    ptr[k + 1] = static_cast<Int>(adj.size());
  }
  return Graph(static_cast<Int>(vertices.size()), std::move(ptr), std::move(adj));
}

LevelStructure bfs_levels(const Graph& g, Int root,
                          const std::vector<Int>& mask, Int mask_value) {
  PSI_CHECK(root >= 0 && root < g.n());
  PSI_CHECK(mask.empty() || static_cast<Int>(mask.size()) == g.n());
  auto in_mask = [&](Int v) {
    return mask.empty() || mask[static_cast<std::size_t>(v)] == mask_value;
  };
  PSI_CHECK(in_mask(root));

  LevelStructure ls;
  ls.level.assign(static_cast<std::size_t>(g.n()), -1);
  ls.order.reserve(static_cast<std::size_t>(g.n()));
  std::queue<Int> q;
  q.push(root);
  ls.level[static_cast<std::size_t>(root)] = 0;
  while (!q.empty()) {
    const Int v = q.front();
    q.pop();
    ls.order.push_back(v);
    ls.depth = std::max(ls.depth, ls.level[static_cast<std::size_t>(v)] + 1);
    for (const Int* u = g.neighbors_begin(v); u != g.neighbors_end(v); ++u) {
      if (!in_mask(*u)) continue;
      if (ls.level[static_cast<std::size_t>(*u)] < 0) {
        ls.level[static_cast<std::size_t>(*u)] =
            ls.level[static_cast<std::size_t>(v)] + 1;
        q.push(*u);
      }
    }
  }
  return ls;
}

Int pseudo_peripheral_vertex(const Graph& g, Int seed,
                             const std::vector<Int>& mask, Int mask_value) {
  Int v = seed;
  LevelStructure ls = bfs_levels(g, v, mask, mask_value);
  for (int iter = 0; iter < 8; ++iter) {
    // Pick a minimum-degree vertex in the last level.
    Int best = -1;
    Int best_deg = 0;
    for (Int u : ls.order) {
      if (ls.level[static_cast<std::size_t>(u)] != ls.depth - 1) continue;
      if (best < 0 || g.degree(u) < best_deg) {
        best = u;
        best_deg = g.degree(u);
      }
    }
    if (best < 0 || best == v) break;
    LevelStructure next = bfs_levels(g, best, mask, mask_value);
    if (next.depth <= ls.depth) break;
    v = best;
    ls = std::move(next);
  }
  return v;
}

std::vector<Int> connected_components(const Graph& g, Int& component_count) {
  std::vector<Int> comp(static_cast<std::size_t>(g.n()), -1);
  component_count = 0;
  std::vector<Int> stack;
  for (Int s = 0; s < g.n(); ++s) {
    if (comp[static_cast<std::size_t>(s)] >= 0) continue;
    stack.push_back(s);
    comp[static_cast<std::size_t>(s)] = component_count;
    while (!stack.empty()) {
      const Int v = stack.back();
      stack.pop_back();
      for (const Int* u = g.neighbors_begin(v); u != g.neighbors_end(v); ++u) {
        if (comp[static_cast<std::size_t>(*u)] < 0) {
          comp[static_cast<std::size_t>(*u)] = component_count;
          stack.push_back(*u);
        }
      }
    }
    ++component_count;
  }
  return comp;
}

}  // namespace psi
