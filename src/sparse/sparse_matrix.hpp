/// \file sparse_matrix.hpp
/// \brief Compressed sparse column structures.
///
/// The whole selected-inversion stack (ordering, symbolic factorization,
/// numeric factorization) operates on structurally symmetric matrices — the
/// regime of the paper (its implementation handles symmetric matrices; values
/// may optionally be unsymmetric over the symmetric pattern, which is the
/// paper's declared work-in-progress extension and is implemented here).
#pragma once

#include <string>
#include <vector>

#include "sparse/types.hpp"

namespace psi {

/// Column-compressed sparsity pattern with sorted row indices per column.
struct SparsityPattern {
  Int n = 0;
  std::vector<Int> col_ptr;  ///< size n+1
  std::vector<Int> row_idx;  ///< size nnz, ascending within each column

  Count nnz() const { return static_cast<Count>(row_idx.size()); }

  /// Validates monotone col_ptr, in-range and sorted row indices.
  void validate() const;

  /// True if for every entry (i,j) the entry (j,i) also exists.
  bool is_structurally_symmetric() const;

  /// Returns the pattern of A + A^T (structural symmetrization).
  SparsityPattern symmetrized() const;

  /// True if entry (row, col) is present (binary search).
  bool has_entry(Int row, Int col) const;
};

/// CSC matrix: pattern plus one value per stored entry.
struct SparseMatrix {
  SparsityPattern pattern;
  std::vector<double> values;

  Int n() const { return pattern.n; }
  Count nnz() const { return pattern.nnz(); }

  void validate() const;

  /// Value at (row, col); 0 when the entry is not stored.
  double value_at(Int row, Int col) const;

  /// Dense expansion (small matrices only; for tests).
  std::vector<double> to_dense_rowmajor() const;

  /// y <- A x (for residual checks in tests).
  void multiply(const std::vector<double>& x, std::vector<double>& y) const;
};

/// Triplet accumulator; duplicate entries are summed on compile().
class TripletBuilder {
 public:
  explicit TripletBuilder(Int n);

  void add(Int row, Int col, double value);
  /// add (r,c,v) and (c,r,v); diagonal added once.
  void add_symmetric(Int row, Int col, double value);

  Int n() const { return n_; }
  std::size_t triplet_count() const { return rows_.size(); }

  /// Builds the CSC matrix (sorted, deduplicated).
  SparseMatrix compile() const;

 private:
  Int n_;
  std::vector<Int> rows_;
  std::vector<Int> cols_;
  std::vector<double> vals_;
};

/// Permuted matrix B = P A P^T where perm maps old index -> new index,
/// i.e. B(perm[i], perm[j]) = A(i, j). Requires a structurally symmetric A
/// for the downstream pipeline but works for any pattern.
SparseMatrix permute_symmetric(const SparseMatrix& a, const std::vector<Int>& perm);

}  // namespace psi
