#include "sparse/sparse_matrix.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"

namespace psi {

void SparsityPattern::validate() const {
  PSI_CHECK(n >= 0);
  PSI_CHECK_MSG(col_ptr.size() == static_cast<std::size_t>(n) + 1,
                "col_ptr size " << col_ptr.size() << " != n+1 = " << n + 1);
  PSI_CHECK(col_ptr.front() == 0);
  PSI_CHECK(col_ptr.back() == static_cast<Int>(row_idx.size()));
  for (Int j = 0; j < n; ++j) {
    PSI_CHECK_MSG(col_ptr[j] <= col_ptr[j + 1], "col_ptr not monotone at " << j);
    for (Int p = col_ptr[j]; p < col_ptr[j + 1]; ++p) {
      PSI_CHECK_MSG(row_idx[p] >= 0 && row_idx[p] < n,
                    "row index out of range in column " << j);
      if (p > col_ptr[j])
        PSI_CHECK_MSG(row_idx[p - 1] < row_idx[p],
                      "row indices not strictly ascending in column " << j);
    }
  }
}

bool SparsityPattern::has_entry(Int row, Int col) const {
  PSI_ASSERT(col >= 0 && col < n);
  const auto begin = row_idx.begin() + col_ptr[col];
  const auto end = row_idx.begin() + col_ptr[col + 1];
  return std::binary_search(begin, end, row);
}

bool SparsityPattern::is_structurally_symmetric() const {
  for (Int j = 0; j < n; ++j)
    for (Int p = col_ptr[j]; p < col_ptr[j + 1]; ++p)
      if (!has_entry(j, row_idx[p])) return false;
  return true;
}

SparsityPattern SparsityPattern::symmetrized() const {
  std::vector<std::vector<Int>> cols(static_cast<std::size_t>(n));
  for (Int j = 0; j < n; ++j) {
    for (Int p = col_ptr[j]; p < col_ptr[j + 1]; ++p) {
      const Int i = row_idx[p];
      cols[static_cast<std::size_t>(j)].push_back(i);
      if (i != j) cols[static_cast<std::size_t>(i)].push_back(j);
    }
  }
  SparsityPattern out;
  out.n = n;
  out.col_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (Int j = 0; j < n; ++j) {
    auto& c = cols[static_cast<std::size_t>(j)];
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    out.col_ptr[static_cast<std::size_t>(j) + 1] =
        out.col_ptr[static_cast<std::size_t>(j)] + static_cast<Int>(c.size());
    out.row_idx.insert(out.row_idx.end(), c.begin(), c.end());
  }
  return out;
}

void SparseMatrix::validate() const {
  pattern.validate();
  PSI_CHECK_MSG(values.size() == pattern.row_idx.size(),
                "values size " << values.size() << " != nnz " << pattern.nnz());
}

double SparseMatrix::value_at(Int row, Int col) const {
  PSI_ASSERT(col >= 0 && col < pattern.n);
  const auto begin = pattern.row_idx.begin() + pattern.col_ptr[col];
  const auto end = pattern.row_idx.begin() + pattern.col_ptr[col + 1];
  const auto it = std::lower_bound(begin, end, row);
  if (it == end || *it != row) return 0.0;
  return values[static_cast<std::size_t>(it - pattern.row_idx.begin())];
}

std::vector<double> SparseMatrix::to_dense_rowmajor() const {
  const auto n = static_cast<std::size_t>(pattern.n);
  std::vector<double> dense(n * n, 0.0);
  for (Int j = 0; j < pattern.n; ++j)
    for (Int p = pattern.col_ptr[j]; p < pattern.col_ptr[j + 1]; ++p)
      dense[static_cast<std::size_t>(pattern.row_idx[p]) * n +
            static_cast<std::size_t>(j)] = values[static_cast<std::size_t>(p)];
  return dense;
}

void SparseMatrix::multiply(const std::vector<double>& x, std::vector<double>& y) const {
  PSI_CHECK(static_cast<Int>(x.size()) == pattern.n);
  y.assign(static_cast<std::size_t>(pattern.n), 0.0);
  for (Int j = 0; j < pattern.n; ++j) {
    const double xj = x[static_cast<std::size_t>(j)];
    for (Int p = pattern.col_ptr[j]; p < pattern.col_ptr[j + 1]; ++p)
      y[static_cast<std::size_t>(pattern.row_idx[p])] +=
          values[static_cast<std::size_t>(p)] * xj;
  }
}

TripletBuilder::TripletBuilder(Int n) : n_(n) { PSI_CHECK(n >= 0); }

void TripletBuilder::add(Int row, Int col, double value) {
  PSI_CHECK_MSG(row >= 0 && row < n_ && col >= 0 && col < n_,
                "triplet (" << row << "," << col << ") out of range for n=" << n_);
  rows_.push_back(row);
  cols_.push_back(col);
  vals_.push_back(value);
}

void TripletBuilder::add_symmetric(Int row, Int col, double value) {
  add(row, col, value);
  if (row != col) add(col, row, value);
}

SparseMatrix TripletBuilder::compile() const {
  // Counting sort by column, then sort each column segment by row and merge
  // duplicates.
  SparseMatrix out;
  out.pattern.n = n_;
  std::vector<Int> counts(static_cast<std::size_t>(n_) + 1, 0);
  for (Int c : cols_) ++counts[static_cast<std::size_t>(c) + 1];
  for (Int j = 0; j < n_; ++j)
    counts[static_cast<std::size_t>(j) + 1] += counts[static_cast<std::size_t>(j)];

  std::vector<Int> next(counts.begin(), counts.end() - 1);
  std::vector<Int> row_tmp(rows_.size());
  std::vector<double> val_tmp(vals_.size());
  for (std::size_t t = 0; t < rows_.size(); ++t) {
    const auto slot = static_cast<std::size_t>(next[static_cast<std::size_t>(cols_[t])]++);
    row_tmp[slot] = rows_[t];
    val_tmp[slot] = vals_[t];
  }

  out.pattern.col_ptr.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (Int j = 0; j < n_; ++j) {
    const auto begin = static_cast<std::size_t>(counts[static_cast<std::size_t>(j)]);
    const auto end = static_cast<std::size_t>(counts[static_cast<std::size_t>(j) + 1]);
    std::vector<std::size_t> order(end - begin);
    std::iota(order.begin(), order.end(), begin);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return row_tmp[a] < row_tmp[b];
    });
    for (std::size_t k = 0; k < order.size(); ++k) {
      const Int row = row_tmp[order[k]];
      const double val = val_tmp[order[k]];
      if (!out.pattern.row_idx.empty() &&
          out.pattern.col_ptr[static_cast<std::size_t>(j)] !=
              static_cast<Int>(out.pattern.row_idx.size()) &&
          out.pattern.row_idx.back() == row) {
        out.values.back() += val;  // duplicate: accumulate
      } else {
        out.pattern.row_idx.push_back(row);
        out.values.push_back(val);
      }
    }
    out.pattern.col_ptr[static_cast<std::size_t>(j) + 1] =
        static_cast<Int>(out.pattern.row_idx.size());
  }
  return out;
}

SparseMatrix permute_symmetric(const SparseMatrix& a, const std::vector<Int>& perm) {
  PSI_CHECK(static_cast<Int>(perm.size()) == a.n());
  TripletBuilder builder(a.n());
  for (Int j = 0; j < a.n(); ++j)
    for (Int p = a.pattern.col_ptr[j]; p < a.pattern.col_ptr[j + 1]; ++p)
      builder.add(perm[static_cast<std::size_t>(a.pattern.row_idx[p])],
                  perm[static_cast<std::size_t>(j)],
                  a.values[static_cast<std::size_t>(p)]);
  return builder.compile();
}

}  // namespace psi
