#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace psi {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

SparseMatrix read_matrix_market(std::istream& in) {
  std::string line;
  PSI_CHECK_MSG(std::getline(in, line), "matrix market: empty stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  PSI_CHECK_MSG(banner == "%%MatrixMarket", "matrix market: bad banner: " << banner);
  PSI_CHECK_MSG(lower(object) == "matrix", "matrix market: unsupported object");
  PSI_CHECK_MSG(lower(format) == "coordinate",
                "matrix market: only coordinate format supported");
  const std::string f = lower(field);
  PSI_CHECK_MSG(f == "real" || f == "integer" || f == "pattern",
                "matrix market: unsupported field " << field);
  const std::string sym = lower(symmetry);
  PSI_CHECK_MSG(sym == "general" || sym == "symmetric",
                "matrix market: unsupported symmetry " << symmetry);

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  long rows = 0, cols = 0, entries = 0;
  dims >> rows >> cols >> entries;
  PSI_CHECK_MSG(rows > 0 && cols > 0 && entries >= 0,
                "matrix market: bad size line: " << line);
  PSI_CHECK_MSG(rows == cols, "matrix market: only square matrices supported");

  TripletBuilder builder(static_cast<Int>(rows));
  for (long e = 0; e < entries; ++e) {
    PSI_CHECK_MSG(std::getline(in, line), "matrix market: truncated entry list");
    std::istringstream es(line);
    long i = 0, j = 0;
    double v = 1.0;
    es >> i >> j;
    if (f != "pattern") es >> v;
    PSI_CHECK_MSG(i >= 1 && i <= rows && j >= 1 && j <= cols,
                  "matrix market: entry out of range: " << line);
    if (sym == "symmetric")
      builder.add_symmetric(static_cast<Int>(i - 1), static_cast<Int>(j - 1), v);
    else
      builder.add(static_cast<Int>(i - 1), static_cast<Int>(j - 1), v);
  }
  return builder.compile();
}

SparseMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  PSI_CHECK_MSG(in.good(), "cannot open matrix market file: " << path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const SparseMatrix& a) {
  out.precision(17);  // round-trip exact doubles
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.n() << ' ' << a.n() << ' ' << a.nnz() << '\n';
  for (Int j = 0; j < a.n(); ++j)
    for (Int p = a.pattern.col_ptr[j]; p < a.pattern.col_ptr[j + 1]; ++p)
      out << a.pattern.row_idx[p] + 1 << ' ' << j + 1 << ' '
          << a.values[static_cast<std::size_t>(p)] << '\n';
}

void write_matrix_market_file(const std::string& path, const SparseMatrix& a) {
  std::ofstream out(path);
  PSI_CHECK_MSG(out.good(), "cannot open file for writing: " << path);
  write_matrix_market(out, a);
}

}  // namespace psi
