#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace psi {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Splits a line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) tokens.push_back(std::move(tok));
  return tokens;
}

/// Parses a whole token as a long; errors name the line and the token.
long parse_long(const std::string& token, long line_no, const char* what) {
  std::size_t consumed = 0;
  long value = 0;
  bool ok = true;
  try {
    value = std::stol(token, &consumed);
  } catch (const std::exception&) {
    ok = false;
  }
  PSI_CHECK_MSG(ok && consumed == token.size(),
                "matrix market: line " << line_no << ": " << what
                                       << " is not an integer: '" << token
                                       << "'");
  return value;
}

/// Parses a whole token as a double; errors name the line and the token.
double parse_double(const std::string& token, long line_no, const char* what) {
  std::size_t consumed = 0;
  double value = 0.0;
  bool ok = true;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    ok = false;
  }
  PSI_CHECK_MSG(ok && consumed == token.size(),
                "matrix market: line " << line_no << ": " << what
                                       << " is not a number: '" << token
                                       << "'");
  return value;
}

}  // namespace

SparseMatrix read_matrix_market(std::istream& in) {
  std::string line;
  long line_no = 0;
  PSI_CHECK_MSG(std::getline(in, line), "matrix market: empty stream");
  ++line_no;
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  PSI_CHECK_MSG(banner == "%%MatrixMarket",
                "matrix market: line 1: bad banner '" << banner
                    << "' (expected %%MatrixMarket)");
  PSI_CHECK_MSG(lower(object) == "matrix",
                "matrix market: line 1: unsupported object '" << object << "'");
  PSI_CHECK_MSG(lower(format) == "coordinate",
                "matrix market: line 1: unsupported format '"
                    << format << "' (only coordinate is supported)");
  const std::string f = lower(field);
  PSI_CHECK_MSG(f == "real" || f == "integer" || f == "pattern",
                "matrix market: line 1: unsupported field '" << field << "'");
  const std::string sym = lower(symmetry);
  PSI_CHECK_MSG(sym == "general" || sym == "symmetric",
                "matrix market: line 1: unsupported symmetry '" << symmetry
                                                                << "'");

  // Skip comments.
  bool have_size_line = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line[0] != '%') {
      have_size_line = true;
      break;
    }
  }
  PSI_CHECK_MSG(have_size_line, "matrix market: missing size line after "
                                    << line_no << " line(s)");
  const std::vector<std::string> size_tokens = tokenize(line);
  PSI_CHECK_MSG(size_tokens.size() == 3,
                "matrix market: line " << line_no << ": size line needs "
                    << "'rows cols entries', got " << size_tokens.size()
                    << " token(s): '" << line << "'");
  const long rows = parse_long(size_tokens[0], line_no, "row count");
  const long cols = parse_long(size_tokens[1], line_no, "column count");
  const long entries = parse_long(size_tokens[2], line_no, "entry count");
  PSI_CHECK_MSG(rows > 0 && cols > 0 && entries >= 0,
                "matrix market: line " << line_no << ": bad sizes " << rows
                                       << " x " << cols << ", " << entries
                                       << " entries");
  PSI_CHECK_MSG(rows == cols, "matrix market: line "
                                  << line_no << ": only square matrices are "
                                  << "supported, got " << rows << " x "
                                  << cols);

  const std::size_t want_tokens = f == "pattern" ? 2 : 3;
  TripletBuilder builder(static_cast<Int>(rows));
  for (long e = 0; e < entries; ++e) {
    PSI_CHECK_MSG(std::getline(in, line),
                  "matrix market: truncated entry list after line " << line_no
                      << " (" << e << " of " << entries << " entries read)");
    ++line_no;
    const std::vector<std::string> tokens = tokenize(line);
    PSI_CHECK_MSG(tokens.size() >= want_tokens,
                  "matrix market: line " << line_no << ": entry needs "
                      << want_tokens << " fields, got " << tokens.size()
                      << ": '" << line << "'");
    const long i = parse_long(tokens[0], line_no, "row index");
    const long j = parse_long(tokens[1], line_no, "column index");
    const double v =
        f == "pattern" ? 1.0 : parse_double(tokens[2], line_no, "value");
    PSI_CHECK_MSG(i >= 1 && i <= rows,
                  "matrix market: line " << line_no << ": row index " << i
                                         << " outside [1, " << rows << "]");
    PSI_CHECK_MSG(j >= 1 && j <= cols,
                  "matrix market: line " << line_no << ": column index " << j
                                         << " outside [1, " << cols << "]");
    if (sym == "symmetric")
      builder.add_symmetric(static_cast<Int>(i - 1), static_cast<Int>(j - 1), v);
    else
      builder.add(static_cast<Int>(i - 1), static_cast<Int>(j - 1), v);
  }
  return builder.compile();
}

SparseMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  PSI_CHECK_MSG(in.good(), "cannot open matrix market file: " << path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const SparseMatrix& a) {
  out.precision(17);  // round-trip exact doubles
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.n() << ' ' << a.n() << ' ' << a.nnz() << '\n';
  for (Int j = 0; j < a.n(); ++j)
    for (Int p = a.pattern.col_ptr[j]; p < a.pattern.col_ptr[j + 1]; ++p)
      out << a.pattern.row_idx[p] + 1 << ' ' << j + 1 << ' '
          << a.values[static_cast<std::size_t>(p)] << '\n';
}

void write_matrix_market_file(const std::string& path, const SparseMatrix& a) {
  std::ofstream out(path);
  PSI_CHECK_MSG(out.good(), "cannot open file for writing: " << path);
  write_matrix_market(out, a);
}

}  // namespace psi
