/// \file dense.hpp
/// \brief Dense column-major matrix and the BLAS-like kernels the supernodal
/// factorization/inversion needs (gemm, trsm, unpivoted getrf, inverse).
///
/// Performance is not the objective of these kernels — the machine model of
/// psi::sim supplies simulated compute times from flop counts — but they are
/// written blocked-free with restrict-friendly loops and are fast enough for
/// the numeric-mode verification problems.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sparse/types.hpp"

namespace psi {

/// Column-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(Int rows, Int cols, double fill = 0.0);

  Int rows() const { return rows_; }
  Int cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(Int r, Int c);
  double operator()(Int r, Int c) const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* col(Int c) { return data_.data() + static_cast<std::size_t>(c) * rows_; }
  const double* col(Int c) const {
    return data_.data() + static_cast<std::size_t>(c) * rows_;
  }

  void set_zero();
  void resize(Int rows, Int cols, double fill = 0.0);

  DenseMatrix transposed() const;

  /// Frobenius norm.
  double norm() const;
  /// max |a_ij|
  double max_abs() const;

  std::string to_string(int precision = 4) const;

 private:
  Int rows_ = 0;
  Int cols_ = 0;
  std::vector<double> data_;
};

/// Raw serialization size in bytes (used for message payload accounting).
inline Count dense_bytes(Int rows, Int cols) {
  return static_cast<Count>(rows) * cols * static_cast<Count>(sizeof(double));
}

enum class Trans { kNo, kYes };
enum class Side { kLeft, kRight };
enum class UpLo { kLower, kUpper };
enum class Diag { kUnit, kNonUnit };

/// C <- alpha * op(A) * op(B) + beta * C.
void gemm(Trans ta, Trans tb, double alpha, const DenseMatrix& a,
          const DenseMatrix& b, double beta, DenseMatrix& c);

/// Triangular solve with multiple right-hand sides, in place on `b`:
///   side=kLeft :  op(T) X = alpha B
///   side=kRight:  X op(T) = alpha B
void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          const DenseMatrix& t, DenseMatrix& b);

/// Unpivoted LU factorization in place: A = L U with unit-diagonal L stored
/// below the diagonal and U on/above it. Throws psi::Error on a (near-)zero
/// pivot; psi uses diagonally-dominant test matrices so pivoting is not
/// required (matching the paper's symmetric/definite application regime).
void getrf_nopivot(DenseMatrix& a);

/// In-place inverse of a triangular matrix.
void triangular_inverse(UpLo uplo, Diag diag, DenseMatrix& t);

/// General inverse via unpivoted LU (A must be LU-factorizable without
/// pivoting).
DenseMatrix inverse(const DenseMatrix& a);

/// max_ij |a_ij - b_ij|; dimensions must agree.
double max_abs_diff(const DenseMatrix& a, const DenseMatrix& b);

/// Flop counts used by the simulator's compute model.
Count gemm_flops(Int m, Int n, Int k);
Count trsm_flops(Int m, Int n);   // triangular solve, m x m triangle, n rhs
Count getrf_flops(Int n);

}  // namespace psi
