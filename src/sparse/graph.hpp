/// \file graph.hpp
/// \brief Undirected adjacency graph of a structurally symmetric pattern,
/// plus the traversals used by the ordering heuristics (RCM level sets,
/// pseudo-peripheral vertices, connected components, BFS-based bisection).
#pragma once

#include <vector>

#include "sparse/sparse_matrix.hpp"
#include "sparse/types.hpp"

namespace psi {

/// Adjacency lists (no self loops), derived from a symmetric pattern.
class Graph {
 public:
  Graph() = default;
  /// Builds from a structurally symmetric pattern; self loops are dropped.
  explicit Graph(const SparsityPattern& pattern);
  /// Builds from explicit adjacency (must already be symmetric, no loops).
  Graph(Int n, std::vector<Int> adj_ptr, std::vector<Int> adj);

  Int n() const { return n_; }
  Count edge_count() const { return static_cast<Count>(adj_.size()) / 2; }

  Int degree(Int v) const { return adj_ptr_[v + 1] - adj_ptr_[v]; }
  const Int* neighbors_begin(Int v) const { return adj_.data() + adj_ptr_[v]; }
  const Int* neighbors_end(Int v) const { return adj_.data() + adj_ptr_[v + 1]; }

  /// Subgraph induced by `vertices`; `local_of` maps original->local (-1
  /// outside). Returned alongside the vertex list (local->original).
  Graph induced_subgraph(const std::vector<Int>& vertices,
                         std::vector<Int>& local_of) const;

 private:
  Int n_ = 0;
  std::vector<Int> adj_ptr_;
  std::vector<Int> adj_;
};

/// BFS level structure rooted at `root`, restricted to vertices with
/// mask[v] == mask_value. Returns levels (level[v] = -1 if unreached) and the
/// visit order.
struct LevelStructure {
  std::vector<Int> level;
  std::vector<Int> order;
  Int depth = 0;  ///< number of levels
};

LevelStructure bfs_levels(const Graph& g, Int root,
                          const std::vector<Int>& mask, Int mask_value);

/// Vertex far from everything (George-Liu heuristic), restricted to the
/// masked component containing `seed`.
Int pseudo_peripheral_vertex(const Graph& g, Int seed,
                             const std::vector<Int>& mask, Int mask_value);

/// Connected components: returns component id per vertex and the count.
std::vector<Int> connected_components(const Graph& g, Int& component_count);

}  // namespace psi
