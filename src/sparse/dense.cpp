#include "sparse/dense.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace psi {

DenseMatrix::DenseMatrix(Int rows, Int cols, double fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), fill) {
  PSI_CHECK(rows >= 0 && cols >= 0);
}

double& DenseMatrix::operator()(Int r, Int c) {
  PSI_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<std::size_t>(c) * rows_ + static_cast<std::size_t>(r)];
}

double DenseMatrix::operator()(Int r, Int c) const {
  PSI_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<std::size_t>(c) * rows_ + static_cast<std::size_t>(r)];
}

void DenseMatrix::set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

void DenseMatrix::resize(Int rows, Int cols, double fill) {
  PSI_CHECK(rows >= 0 && cols >= 0);
  rows_ = rows;
  cols_ = cols;
  data_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), fill);
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix t(cols_, rows_);
  for (Int c = 0; c < cols_; ++c)
    for (Int r = 0; r < rows_; ++r) t(c, r) = (*this)(r, c);
  return t;
}

double DenseMatrix::norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double DenseMatrix::max_abs() const {
  double acc = 0.0;
  for (double v : data_) acc = std::max(acc, std::fabs(v));
  return acc;
}

std::string DenseMatrix::to_string(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  for (Int r = 0; r < rows_; ++r) {
    for (Int c = 0; c < cols_; ++c) os << std::setw(precision + 8) << (*this)(r, c);
    os << '\n';
  }
  return os.str();
}

void gemm(Trans ta, Trans tb, double alpha, const DenseMatrix& a,
          const DenseMatrix& b, double beta, DenseMatrix& c) {
  const Int m = (ta == Trans::kNo) ? a.rows() : a.cols();
  const Int k = (ta == Trans::kNo) ? a.cols() : a.rows();
  const Int kb = (tb == Trans::kNo) ? b.rows() : b.cols();
  const Int n = (tb == Trans::kNo) ? b.cols() : b.rows();
  PSI_CHECK_MSG(k == kb, "gemm inner dimensions disagree: " << k << " vs " << kb);
  PSI_CHECK_MSG(c.rows() == m && c.cols() == n,
                "gemm output is " << c.rows() << "x" << c.cols() << ", expected "
                                  << m << "x" << n);

  if (beta != 1.0) {
    for (Int j = 0; j < n; ++j) {
      double* cj = c.col(j);
      for (Int i = 0; i < m; ++i) cj[i] *= beta;
    }
  }
  if (alpha == 0.0 || k == 0) return;

  // Column-major kernels: accumulate into C columns, streaming A columns.
  for (Int j = 0; j < n; ++j) {
    double* cj = c.col(j);
    for (Int l = 0; l < k; ++l) {
      const double bval =
          alpha * ((tb == Trans::kNo) ? b(l, j) : b(j, l));
      if (bval == 0.0) continue;
      if (ta == Trans::kNo) {
        const double* al = a.col(l);
        for (Int i = 0; i < m; ++i) cj[i] += al[i] * bval;
      } else {
        // op(A)(i,l) = A(l,i): column i of A is contiguous; gather.
        for (Int i = 0; i < m; ++i) cj[i] += a(l, i) * bval;
      }
    }
  }
}

void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          const DenseMatrix& t, DenseMatrix& b) {
  PSI_CHECK(t.rows() == t.cols());
  const Int n = t.rows();
  if (side == Side::kLeft) {
    PSI_CHECK_MSG(b.rows() == n, "trsm: B has " << b.rows() << " rows, T is " << n);
  } else {
    PSI_CHECK_MSG(b.cols() == n, "trsm: B has " << b.cols() << " cols, T is " << n);
  }

  if (alpha != 1.0) {
    for (Int j = 0; j < b.cols(); ++j) {
      double* bj = b.col(j);
      for (Int i = 0; i < b.rows(); ++i) bj[i] *= alpha;
    }
  }

  // Effective orientation after the transpose flag: solving with op(T).
  const bool lower = (uplo == UpLo::kLower) != (trans == Trans::kYes);
  auto tval = [&](Int r, Int c) {
    return (trans == Trans::kNo) ? t(r, c) : t(c, r);
  };
  auto pivot = [&](Int i) {
    if (diag == Diag::kUnit) return 1.0;
    const double p = tval(i, i);
    PSI_CHECK_MSG(std::fabs(p) > 1e-300, "trsm: zero pivot at " << i);
    return p;
  };

  if (side == Side::kLeft) {
    for (Int j = 0; j < b.cols(); ++j) {
      double* bj = b.col(j);
      if (lower) {
        for (Int i = 0; i < n; ++i) {
          double s = bj[i];
          for (Int l = 0; l < i; ++l) s -= tval(i, l) * bj[l];
          bj[i] = s / pivot(i);
        }
      } else {
        for (Int i = n - 1; i >= 0; --i) {
          double s = bj[i];
          for (Int l = i + 1; l < n; ++l) s -= tval(i, l) * bj[l];
          bj[i] = s / pivot(i);
        }
      }
    }
  } else {
    // X op(T) = B  => column-by-column substitution over T's columns.
    if (lower) {
      // op(T) lower: X(:,j) determined from j = n-1 downto 0.
      for (Int j = n - 1; j >= 0; --j) {
        double* bj = b.col(j);
        const double p = pivot(j);
        for (Int i = 0; i < b.rows(); ++i) bj[i] /= p;
        for (Int l = 0; l < j; ++l) {
          const double f = tval(j, l);
          if (f == 0.0) continue;
          double* bl = b.col(l);
          for (Int i = 0; i < b.rows(); ++i) bl[i] -= bj[i] * f;
        }
      }
    } else {
      for (Int j = 0; j < n; ++j) {
        double* bj = b.col(j);
        const double p = pivot(j);
        for (Int i = 0; i < b.rows(); ++i) bj[i] /= p;
        for (Int l = j + 1; l < n; ++l) {
          const double f = tval(j, l);
          if (f == 0.0) continue;
          double* bl = b.col(l);
          for (Int i = 0; i < b.rows(); ++i) bl[i] -= bj[i] * f;
        }
      }
    }
  }
}

void getrf_nopivot(DenseMatrix& a) {
  PSI_CHECK(a.rows() == a.cols());
  const Int n = a.rows();
  for (Int k = 0; k < n; ++k) {
    const double pivot = a(k, k);
    PSI_CHECK_MSG(std::fabs(pivot) > 1e-300,
                  "getrf_nopivot: zero pivot at column " << k);
    for (Int i = k + 1; i < n; ++i) a(i, k) /= pivot;
    for (Int j = k + 1; j < n; ++j) {
      const double ukj = a(k, j);
      if (ukj == 0.0) continue;
      double* aj = a.col(j);
      const double* ak = a.col(k);
      for (Int i = k + 1; i < n; ++i) aj[i] -= ak[i] * ukj;
    }
  }
}

void triangular_inverse(UpLo uplo, Diag diag, DenseMatrix& t) {
  PSI_CHECK(t.rows() == t.cols());
  const Int n = t.rows();
  DenseMatrix inv(n, n);
  for (Int i = 0; i < n; ++i) inv(i, i) = 1.0;
  trsm(Side::kLeft, uplo, Trans::kNo, diag, 1.0, t, inv);
  t = std::move(inv);
}

DenseMatrix inverse(const DenseMatrix& a) {
  PSI_CHECK(a.rows() == a.cols());
  DenseMatrix lu = a;
  getrf_nopivot(lu);
  const Int n = a.rows();
  DenseMatrix inv(n, n);
  for (Int i = 0; i < n; ++i) inv(i, i) = 1.0;
  trsm(Side::kLeft, UpLo::kLower, Trans::kNo, Diag::kUnit, 1.0, lu, inv);
  trsm(Side::kLeft, UpLo::kUpper, Trans::kNo, Diag::kNonUnit, 1.0, lu, inv);
  return inv;
}

double max_abs_diff(const DenseMatrix& a, const DenseMatrix& b) {
  PSI_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double acc = 0.0;
  for (Int c = 0; c < a.cols(); ++c)
    for (Int r = 0; r < a.rows(); ++r)
      acc = std::max(acc, std::fabs(a(r, c) - b(r, c)));
  return acc;
}

Count gemm_flops(Int m, Int n, Int k) {
  return 2LL * m * n * k;
}

Count trsm_flops(Int m, Int n) { return static_cast<Count>(m) * m * n; }

Count getrf_flops(Int n) {
  const auto nn = static_cast<Count>(n);
  return 2 * nn * nn * nn / 3;
}

}  // namespace psi
