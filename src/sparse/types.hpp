/// \file types.hpp
/// \brief Fundamental index/size types for the sparse stack.
#pragma once

#include <cstdint>

namespace psi {

/// Matrix/graph index. 32 bits: problem sizes in this repo stay far below
/// 2^31 rows; communication byte counts use std::int64_t/double instead.
using Int = std::int32_t;

/// Byte counts, flop counts, message counts.
using Count = std::int64_t;

}  // namespace psi
