/// \file matrix_market.hpp
/// \brief Matrix Market (coordinate, real) reader/writer.
///
/// The paper evaluates matrices from the University of Florida collection
/// (audikw_1, Flan_1565). Those files are not shipped here, but this reader
/// lets a user with network access drop the .mtx files in and run every bench
/// on the genuine inputs; the test suite round-trips generated matrices.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/sparse_matrix.hpp"

namespace psi {

/// Reads a Matrix Market "matrix coordinate real {general|symmetric}" file.
/// Symmetric storage is expanded to both triangles. Throws psi::Error on
/// malformed input.
SparseMatrix read_matrix_market(std::istream& in);
SparseMatrix read_matrix_market_file(const std::string& path);

/// Writes coordinate/real/general format (full pattern).
void write_matrix_market(std::ostream& out, const SparseMatrix& a);
void write_matrix_market_file(const std::string& path, const SparseMatrix& a);

}  // namespace psi
