#include "sparse/generators.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace psi {

namespace {

/// Deterministic off-diagonal value in [-1.0, -0.2] for the unordered pair
/// (i, j) (symmetric) or the ordered pair (unsymmetric).
double pair_value(std::uint64_t seed, Int i, Int j, bool symmetric) {
  Int a = i, b = j;
  if (symmetric && a > b) std::swap(a, b);
  const std::uint64_t h = hash_combine(
      seed, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
                static_cast<std::uint32_t>(b));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return -(0.2 + 0.8 * u);
}

}  // namespace

void assign_dd_values(SparseMatrix& a, std::uint64_t seed, ValueKind values) {
  const bool symmetric = (values == ValueKind::kSymmetric);
  const Int n = a.n();
  a.values.assign(a.pattern.row_idx.size(), 0.0);

  // First pass: off-diagonal values; accumulate row and column magnitudes.
  std::vector<double> row_sum(static_cast<std::size_t>(n), 0.0);
  std::vector<double> col_sum(static_cast<std::size_t>(n), 0.0);
  for (Int j = 0; j < n; ++j) {
    for (Int p = a.pattern.col_ptr[j]; p < a.pattern.col_ptr[j + 1]; ++p) {
      const Int i = a.pattern.row_idx[p];
      if (i == j) continue;
      const double v = pair_value(seed, i, j, symmetric);
      a.values[static_cast<std::size_t>(p)] = v;
      row_sum[static_cast<std::size_t>(i)] += std::fabs(v);
      col_sum[static_cast<std::size_t>(j)] += std::fabs(v);
    }
  }

  // Second pass: diagonal dominates both its row and its column, which keeps
  // every Schur complement diagonally dominant -> unpivoted LU is stable.
  for (Int j = 0; j < n; ++j) {
    bool found_diag = false;
    for (Int p = a.pattern.col_ptr[j]; p < a.pattern.col_ptr[j + 1]; ++p) {
      if (a.pattern.row_idx[p] == j) {
        const std::uint64_t h = hash_combine(seed ^ 0xd1a60ull,
                                             static_cast<std::uint64_t>(j));
        const double jitter = static_cast<double>(h >> 11) * 0x1.0p-53;
        a.values[static_cast<std::size_t>(p)] =
            1.0 + jitter +
            std::max(row_sum[static_cast<std::size_t>(j)],
                     col_sum[static_cast<std::size_t>(j)]);
        found_diag = true;
        break;
      }
    }
    PSI_CHECK_MSG(found_diag, "pattern is missing diagonal entry " << j);
  }
}

namespace {

/// Shared scaffolding: build pattern from a node mesh where each node has
/// `dofs` rows and nodes are coupled when `adjacent` says so. Every coupled
/// node pair contributes a dense dofs x dofs block.
template <typename NodeCount, typename ForEachNeighbor, typename NodeCoord>
GeneratedMatrix build_block_mesh(NodeCount node_count, Int dofs,
                                 ForEachNeighbor for_each_neighbor,
                                 NodeCoord node_coord, std::uint64_t seed,
                                 ValueKind values, std::string name) {
  const Int nodes = node_count;
  const Int n = nodes * dofs;
  TripletBuilder builder(n);
  for (Int node = 0; node < nodes; ++node) {
    // Self block (dense, includes diagonal).
    for (Int a = 0; a < dofs; ++a)
      for (Int b = 0; b < dofs; ++b)
        builder.add(node * dofs + a, node * dofs + b, 0.0);
    // Neighbor blocks. The callback reports each neighbor once per direction;
    // both (node, nb) and (nb, node) get emitted over the full loop since
    // adjacency is symmetric.
    for_each_neighbor(node, [&](Int nb) {
      for (Int a = 0; a < dofs; ++a)
        for (Int b = 0; b < dofs; ++b)
          builder.add(node * dofs + a, nb * dofs + b, 0.0);
    });
  }

  GeneratedMatrix out;
  out.matrix = builder.compile();
  assign_dd_values(out.matrix, seed, values);
  out.coords.resize(static_cast<std::size_t>(n));
  for (Int node = 0; node < nodes; ++node) {
    const std::array<double, 3> c = node_coord(node);
    for (Int a = 0; a < dofs; ++a)
      out.coords[static_cast<std::size_t>(node * dofs + a)] = c;
  }
  out.name = std::move(name);
  return out;
}

}  // namespace

GeneratedMatrix laplacian2d(Int nx, Int ny, std::uint64_t seed, ValueKind values) {
  PSI_CHECK(nx > 0 && ny > 0);
  auto id = [=](Int x, Int y) { return x + nx * y; };
  return build_block_mesh(
      nx * ny, 1,
      [=](Int node, auto&& emit) {
        const Int x = node % nx, y = node / nx;
        if (x > 0) emit(id(x - 1, y));
        if (x + 1 < nx) emit(id(x + 1, y));
        if (y > 0) emit(id(x, y - 1));
        if (y + 1 < ny) emit(id(x, y + 1));
      },
      [=](Int node) {
        return std::array<double, 3>{static_cast<double>(node % nx),
                                     static_cast<double>(node / nx), 0.0};
      },
      seed, values,
      "laplacian2d_" + std::to_string(nx) + "x" + std::to_string(ny));
}

GeneratedMatrix laplacian3d(Int nx, Int ny, Int nz, std::uint64_t seed,
                            ValueKind values) {
  PSI_CHECK(nx > 0 && ny > 0 && nz > 0);
  auto id = [=](Int x, Int y, Int z) { return x + nx * (y + ny * z); };
  return build_block_mesh(
      nx * ny * nz, 1,
      [=](Int node, auto&& emit) {
        const Int x = node % nx, y = (node / nx) % ny, z = node / (nx * ny);
        if (x > 0) emit(id(x - 1, y, z));
        if (x + 1 < nx) emit(id(x + 1, y, z));
        if (y > 0) emit(id(x, y - 1, z));
        if (y + 1 < ny) emit(id(x, y + 1, z));
        if (z > 0) emit(id(x, y, z - 1));
        if (z + 1 < nz) emit(id(x, y, z + 1));
      },
      [=](Int node) {
        return std::array<double, 3>{static_cast<double>(node % nx),
                                     static_cast<double>((node / nx) % ny),
                                     static_cast<double>(node / (nx * ny))};
      },
      seed, values,
      "laplacian3d_" + std::to_string(nx) + "x" + std::to_string(ny) + "x" +
          std::to_string(nz));
}

GeneratedMatrix fem3d(Int nx, Int ny, Int nz, Int dofs, std::uint64_t seed,
                      ValueKind values) {
  PSI_CHECK(nx > 0 && ny > 0 && nz > 0 && dofs > 0);
  auto id = [=](Int x, Int y, Int z) { return x + nx * (y + ny * z); };
  return build_block_mesh(
      nx * ny * nz, dofs,
      [=](Int node, auto&& emit) {
        const Int x = node % nx, y = (node / nx) % ny, z = node / (nx * ny);
        for (Int dz = -1; dz <= 1; ++dz)
          for (Int dy = -1; dy <= 1; ++dy)
            for (Int dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              const Int X = x + dx, Y = y + dy, Z = z + dz;
              if (X < 0 || X >= nx || Y < 0 || Y >= ny || Z < 0 || Z >= nz)
                continue;
              emit(id(X, Y, Z));
            }
      },
      [=](Int node) {
        return std::array<double, 3>{static_cast<double>(node % nx),
                                     static_cast<double>((node / nx) % ny),
                                     static_cast<double>(node / (nx * ny))};
      },
      seed, values,
      "fem3d_" + std::to_string(nx) + "x" + std::to_string(ny) + "x" +
          std::to_string(nz) + "_d" + std::to_string(dofs));
}

GeneratedMatrix dg2d(Int ex, Int ey, Int block, std::uint64_t seed,
                     ValueKind values) {
  PSI_CHECK(ex > 0 && ey > 0 && block > 0);
  auto id = [=](Int x, Int y) { return x + ex * y; };
  return build_block_mesh(
      ex * ey, block,
      [=](Int elem, auto&& emit) {
        const Int x = elem % ex, y = elem / ex;
        if (x > 0) emit(id(x - 1, y));
        if (x + 1 < ex) emit(id(x + 1, y));
        if (y > 0) emit(id(x, y - 1));
        if (y + 1 < ey) emit(id(x, y + 1));
      },
      [=](Int elem) {
        return std::array<double, 3>{static_cast<double>(elem % ex),
                                     static_cast<double>(elem / ex), 0.0};
      },
      seed, values,
      "dg2d_" + std::to_string(ex) + "x" + std::to_string(ey) + "_b" +
          std::to_string(block));
}

GeneratedMatrix dg3d(Int ex, Int ey, Int ez, Int block, std::uint64_t seed,
                     ValueKind values) {
  PSI_CHECK(ex > 0 && ey > 0 && ez > 0 && block > 0);
  auto id = [=](Int x, Int y, Int z) { return x + ex * (y + ey * z); };
  return build_block_mesh(
      ex * ey * ez, block,
      [=](Int elem, auto&& emit) {
        const Int x = elem % ex, y = (elem / ex) % ey, z = elem / (ex * ey);
        if (x > 0) emit(id(x - 1, y, z));
        if (x + 1 < ex) emit(id(x + 1, y, z));
        if (y > 0) emit(id(x, y - 1, z));
        if (y + 1 < ey) emit(id(x, y + 1, z));
        if (z > 0) emit(id(x, y, z - 1));
        if (z + 1 < ez) emit(id(x, y, z + 1));
      },
      [=](Int elem) {
        return std::array<double, 3>{static_cast<double>(elem % ex),
                                     static_cast<double>((elem / ex) % ey),
                                     static_cast<double>(elem / (ex * ey))};
      },
      seed, values,
      "dg3d_" + std::to_string(ex) + "x" + std::to_string(ey) + "x" +
          std::to_string(ez) + "_b" + std::to_string(block));
}

GeneratedMatrix make_nonsym(GeneratedMatrix symmetric_input, std::uint64_t seed,
                            double drop_prob, Int group_size) {
  PSI_CHECK_MSG(drop_prob >= 0.0 && drop_prob <= 1.0,
                "drop_prob must be in [0, 1], got " << drop_prob);
  PSI_CHECK_MSG(group_size >= 1, "group_size must be >= 1, got " << group_size);
  const SparseMatrix& a = symmetric_input.matrix;
  PSI_CHECK_MSG(a.pattern.is_structurally_symmetric(),
                "make_nonsym requires a structurally symmetric input");
  const Int n = a.n();
  TripletBuilder builder(n);
  for (Int j = 0; j < n; ++j) {
    for (Int p = a.pattern.col_ptr[j]; p < a.pattern.col_ptr[j + 1]; ++p) {
      const Int i = a.pattern.row_idx[p];
      // Drops act on whole coupling groups (elements for the DG meshes,
      // nodes for fem3d, scalars when group_size == 1) so that the
      // resulting structural asymmetry survives at block/supernode
      // granularity — a one-scalar drop inside a dense coupling block
      // would leave the *block* structure symmetric.
      const Int gi = i / group_size, gj = j / group_size;
      if (gi == gj) {
        builder.add(i, j, 0.0);  // diagonal group always survives intact
        continue;
      }
      // One hash per unordered group pair decides the pair's fate; both
      // directions consult the same hash, so exactly one survives a drop.
      const Int lo = std::min(gi, gj), hi = std::max(gi, gj);
      const std::uint64_t h = hash_combine(
          seed ^ 0x9e3779b97f4a7c15ull,
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(lo)) << 32) |
              static_cast<std::uint32_t>(hi));
      const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      if (u >= drop_prob) {
        builder.add(i, j, 0.0);  // pair survives intact
        continue;
      }
      const bool keep_lower = (h & 1) != 0;
      if ((gi > gj) == keep_lower) builder.add(i, j, 0.0);
    }
  }
  GeneratedMatrix out;
  out.matrix = builder.compile();
  assign_dd_values(out.matrix, hash_combine(seed, 0x5eedull),
                   ValueKind::kUnsymmetric);
  out.coords = std::move(symmetric_input.coords);
  out.name = symmetric_input.name + "_nonsym";
  PSI_CHECK(out.matrix.n() == n);
  return out;
}

GeneratedMatrix dg2d_nonsym(Int ex, Int ey, Int block, std::uint64_t seed,
                            double drop_prob) {
  return make_nonsym(dg2d(ex, ey, block, seed), seed, drop_prob, block);
}

GeneratedMatrix dg3d_nonsym(Int ex, Int ey, Int ez, Int block,
                            std::uint64_t seed, double drop_prob) {
  return make_nonsym(dg3d(ex, ey, ez, block, seed), seed, drop_prob, block);
}

GeneratedMatrix fem3d_nonsym(Int nx, Int ny, Int nz, Int dofs,
                             std::uint64_t seed, double drop_prob) {
  return make_nonsym(fem3d(nx, ny, nz, dofs, seed), seed, drop_prob, dofs);
}

GeneratedMatrix random_nonsym(Int n, double avg_degree, std::uint64_t seed,
                              double drop_prob) {
  return make_nonsym(random_symmetric(n, avg_degree, seed), seed, drop_prob);
}

GeneratedMatrix random_symmetric(Int n, double avg_degree, std::uint64_t seed,
                                 ValueKind values) {
  PSI_CHECK(n > 0);
  PSI_CHECK(avg_degree >= 0.0);
  Rng rng(seed);
  TripletBuilder builder(n);
  for (Int i = 0; i < n; ++i) builder.add(i, i, 0.0);
  // Ring to guarantee connectivity, then random chords.
  for (Int i = 0; i + 1 < n; ++i) {
    builder.add(i, i + 1, 0.0);
    builder.add(i + 1, i, 0.0);
  }
  const auto extra =
      static_cast<Count>(std::max(0.0, (avg_degree - 2.0) * n / 2.0));
  for (Count e = 0; e < extra; ++e) {
    const Int i = static_cast<Int>(rng.uniform(static_cast<std::uint64_t>(n)));
    const Int j = static_cast<Int>(rng.uniform(static_cast<std::uint64_t>(n)));
    if (i == j) continue;
    builder.add(i, j, 0.0);
    builder.add(j, i, 0.0);
  }
  GeneratedMatrix out;
  out.matrix = builder.compile();
  assign_dd_values(out.matrix, seed, values);
  out.coords.assign(static_cast<std::size_t>(n), {0.0, 0.0, 0.0});
  for (Int i = 0; i < n; ++i)
    out.coords[static_cast<std::size_t>(i)][0] = static_cast<double>(i);
  out.name = "random_symmetric_" + std::to_string(n);
  return out;
}

}  // namespace psi
