/// \file generators.hpp
/// \brief Synthetic test-matrix generators.
///
/// The paper's evaluation matrices are DFT Hamiltonians from a discontinuous
/// Galerkin (DG) discretization (DG_PNF14000, DG_Graphene_32768,
/// DG_Water_12888, LU_C_BN_C_4by2 — "relatively dense", block-structured) and
/// 3-D finite-element matrices from the UF collection (audikw_1, Flan_1565 —
/// "relatively sparse"). These generators produce laptop-scale matrices with
/// the same structural character:
///
///  * dg2d / dg3d — a mesh of elements, each carrying a dense `block x block`
///    diagonal block plus dense coupling blocks to face neighbors. High fill
///    density, large supernodes, heavy communication volume.
///  * fem3d — a nodal hexahedral mesh (27-point stencil) with `dofs`
///    unknowns per node (audikw_1 is solid mechanics: 3 dofs/node). Sparse,
///    communication/computation ratio limits scalability.
///  * laplacian2d/3d — classic stencils for unit tests.
///
/// Values are symmetric and strictly diagonally dominant so the unpivoted
/// factorization used throughout the repo is numerically safe; an
/// unsymmetric-values-over-symmetric-pattern variant exercises the paper's
/// declared extension.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sparse/sparse_matrix.hpp"
#include "sparse/types.hpp"

namespace psi {

/// A generated matrix plus per-row mesh coordinates (for geometric nested
/// dissection) and a human-readable name.
struct GeneratedMatrix {
  SparseMatrix matrix;
  std::vector<std::array<double, 3>> coords;  ///< one per matrix row
  std::string name;
};

/// Value symmetry of the generated numerical values.
enum class ValueKind {
  kSymmetric,    ///< A = A^T, strictly diagonally dominant
  kUnsymmetric,  ///< symmetric pattern, unsymmetric values, diag-dominant
};

/// 5-point Laplacian on an nx x ny grid (n = nx*ny).
GeneratedMatrix laplacian2d(Int nx, Int ny, std::uint64_t seed = 1,
                            ValueKind values = ValueKind::kSymmetric);

/// 7-point Laplacian on an nx x ny x nz grid.
GeneratedMatrix laplacian3d(Int nx, Int ny, Int nz, std::uint64_t seed = 1,
                            ValueKind values = ValueKind::kSymmetric);

/// 3-D hexahedral nodal mesh, 27-point node adjacency, `dofs` unknowns per
/// node (n = nx*ny*nz*dofs). audikw_1/Flan_1565 character.
GeneratedMatrix fem3d(Int nx, Int ny, Int nz, Int dofs, std::uint64_t seed = 1,
                      ValueKind values = ValueKind::kSymmetric);

/// 2-D DG mesh: ex x ey elements, dense block x block self-coupling plus
/// dense coupling to 4 edge neighbors (n = ex*ey*block). DG_PNF14000 /
/// DG_Graphene character.
GeneratedMatrix dg2d(Int ex, Int ey, Int block, std::uint64_t seed = 1,
                     ValueKind values = ValueKind::kSymmetric);

/// 3-D DG mesh: ex x ey x ez elements, 6 face neighbors (n = ex*ey*ez*block).
/// DG_Water / LU_C_BN_C character.
GeneratedMatrix dg3d(Int ex, Int ey, Int ez, Int block, std::uint64_t seed = 1,
                     ValueKind values = ValueKind::kSymmetric);

/// Random connected structurally symmetric matrix with approximately
/// `avg_degree` off-diagonals per row (for property tests; coordinates are
/// synthetic and unusable for geometric ND).
GeneratedMatrix random_symmetric(Int n, double avg_degree, std::uint64_t seed,
                                 ValueKind values = ValueKind::kSymmetric);

/// Assigns deterministic diagonally-dominant values onto an existing
/// symmetric pattern (used by all generators; exposed for tests).
void assign_dd_values(SparseMatrix& a, std::uint64_t seed, ValueKind values);

// --- structurally non-symmetric variants -----------------------------------
// Each takes a structurally symmetric generated matrix and drops exactly ONE
// direction of a seeded subset of its off-diagonal coupling-group pairs
// (probability `drop_prob` per unordered pair; the surviving direction is
// hash-chosen), keeping the full block diagonal, then assigns fresh
// unsymmetric diagonally-dominant values. Groups are whole mesh couplings —
// elements for dg2d/dg3d, nodes for fem3d, scalars for random — so the
// asymmetry survives at block/supernode granularity. The result has a
// genuinely non-symmetric sparsity pattern whose symmetric closure is the
// original pattern — the input class of psi::nsym. Coordinates and mesh
// geometry are preserved.

/// The shared transform; exposed for tests and custom patterns. Rows i and j
/// belong to the same coupling group iff i / group_size == j / group_size.
GeneratedMatrix make_nonsym(GeneratedMatrix symmetric_input, std::uint64_t seed,
                            double drop_prob, Int group_size = 1);

/// dg2d / dg3d / fem3d with seeded one-directional coupling drops.
GeneratedMatrix dg2d_nonsym(Int ex, Int ey, Int block, std::uint64_t seed = 1,
                            double drop_prob = 0.35);
GeneratedMatrix dg3d_nonsym(Int ex, Int ey, Int ez, Int block,
                            std::uint64_t seed = 1, double drop_prob = 0.35);
GeneratedMatrix fem3d_nonsym(Int nx, Int ny, Int nz, Int dofs,
                             std::uint64_t seed = 1, double drop_prob = 0.35);

/// Non-symmetric variant of random_symmetric (property tests / fuzzing).
GeneratedMatrix random_nonsym(Int n, double avg_degree, std::uint64_t seed,
                              double drop_prob = 0.35);

}  // namespace psi
