/// \file engine.hpp
/// \brief Distributed non-symmetric selected inversion: the restricted
/// Algorithm 1 analogue executed by asynchronous per-rank state machines
/// over the simulator, with every collective routed through the NsymPlan's
/// paired row-side and column-side trees.
///
/// Control flow mirrors pselinv's unsymmetric-values mode, with the sums
/// restricted to the factor's directed structures:
///  * the L-side chain (DiagBcast → trsm → CrossSend → ColBcast → GEMMs →
///    RowReduce) runs per lstruct(K) entry and produces the lower blocks
///    A^{-1}_{U(K),K};
///  * the U-side chain (DiagRowBcast → trsm → CrossSendU → RowBcast → GEMMs
///    → ColReduceUp) runs per ustruct(K) entry and produces the upper blocks
///    A^{-1}_{K,U(K)};
///  * the diagonal update reduces Û_{K,ustruct} A^{-1}_{ustruct,K} up
///    column pc(K).
/// A union entry absent from one side owns an exact-zero result block on
/// that side (its restricted sum is empty); such blocks are finalized
/// locally by their owners at start with no communication, and a supernode
/// with an empty ustruct finalizes its diagonal as U_KK^{-1} L_KK^{-1}
/// directly.
///
/// Execution modes, fault injection, the resilient protocol (canonical-
/// ordinal accumulation → bitwise fault-immune results), partition-parallel
/// simulation, and observability all compose exactly as in run_pselinv.
#pragma once

#include <memory>
#include <vector>

#include "nsym/factor.hpp"
#include "nsym/plan.hpp"
#include "pselinv/engine.hpp"
#include "sim/engine.hpp"

namespace psi::nsym {

using pselinv::ExecutionMode;
using pselinv::RunOptions;
using pselinv::RunResult;

/// Runs distributed non-symmetric selected inversion on the simulated
/// machine. `factor` must be the *unnormalized* sequential NsymSupernodalLU
/// of the same analysis the plan was built from (numeric mode; may be null
/// for kTrace) — the engine performs both panel normalizations itself,
/// including their broadcast communication. Numeric results must match
/// nsym_selected_inversion() (tests enforce tolerance in the historical
/// mode and bitwise stability across faults/schedules in resilient mode).
RunResult run_nsym(const NsymPlan& plan, const sim::Machine& machine,
                   ExecutionMode mode,
                   const NsymSupernodalLU* factor = nullptr,
                   std::vector<sim::TraceEvent>* trace_out = nullptr,
                   obs::Sink* obs_sink = nullptr,
                   const RunOptions& options = {});

}  // namespace psi::nsym
