#include "nsym/selinv.hpp"

#include "common/check.hpp"

namespace psi::nsym {

namespace {

/// The per-supernode sweep body shared verbatim by the sequential driver
/// and the parallel sweep tasks (task-local sums in sequential order keep
/// the two bitwise identical).
void sweep_supernode(const NsymBlockMatrix& f, BlockMatrix& ainv, Int k) {
  const BlockStructure& bs = f.blocks();
  const NsymStructure& st = f.structure();
  const auto& part = bs.part;
  const Int width = part.size(k);

  // Seed the diagonal: U_KK^{-1} L_KK^{-1}.
  DenseMatrix diag_inv(width, width);
  for (Int i = 0; i < width; ++i) diag_inv(i, i) = 1.0;
  trsm(Side::kLeft, UpLo::kLower, Trans::kNo, Diag::kUnit, 1.0, f.diag(k),
       diag_inv);
  trsm(Side::kLeft, UpLo::kUpper, Trans::kNo, Diag::kNonUnit, 1.0, f.diag(k),
       diag_inv);

  DenseMatrix lhat, uhat, contrib, acc;
  const auto& uni = bs.struct_of[static_cast<std::size_t>(k)];
  const auto& lstr = st.lstruct_of[static_cast<std::size_t>(k)];
  const auto& ustr = st.ustruct_of[static_cast<std::size_t>(k)];
  // A^{-1}_{J,K} = - sum_{I in lstruct} A^{-1}_{J,I} L̂_{I,K}   (lower)
  // A^{-1}_{K,J} = - sum_{I in ustruct} Û_{K,I} A^{-1}_{I,J}   (upper)
  // J walks the union ancestor set; an empty restricted sum leaves the
  // block exactly zero (the factor panel vanished, so the recurrence does).
  for (Int j : uni) {
    acc.resize(part.size(j), width);
    acc.set_zero();
    for (Int i : lstr) {
      lhat = f.block(i, k);        // L̂_{I,K}
      contrib = ainv.block(j, i);  // A^{-1}_{J,I}
      gemm(Trans::kNo, Trans::kNo, -1.0, contrib, lhat, 1.0, acc);
    }
    ainv.set_block(j, k, acc);

    acc.resize(width, part.size(j));
    acc.set_zero();
    for (Int i : ustr) {
      uhat = f.block(k, i);        // Û_{K,I}
      contrib = ainv.block(i, j);  // A^{-1}_{I,J}
      gemm(Trans::kNo, Trans::kNo, -1.0, uhat, contrib, 1.0, acc);
    }
    ainv.set_block(k, j, acc);
  }

  // A^{-1}_{K,K} = U_KK^{-1} L_KK^{-1} - Û_{K,ustruct} A^{-1}_{ustruct,K}.
  for (Int j : ustr) {
    uhat = f.block(k, j);
    contrib = ainv.block(j, k);  // freshly computed above
    gemm(Trans::kNo, Trans::kNo, -1.0, uhat, contrib, 1.0, diag_inv);
  }
  ainv.set_block(k, k, diag_inv);
}

}  // namespace

BlockMatrix nsym_selected_inversion(NsymSupernodalLU& lu) {
  if (!lu.normalized()) lu.normalize_panels();
  const BlockStructure& bs = lu.blocks();
  BlockMatrix ainv(bs);
  for (Int k = bs.supernode_count() - 1; k >= 0; --k)
    sweep_supernode(lu.storage(), ainv, k);
  return ainv;
}

BlockMatrix nsym_selinv_parallel(NsymSupernodalLU& lu,
                                 const numeric::ParallelOptions& options) {
  const BlockStructure& bs = lu.blocks();
  NsymBlockMatrix& f = lu.storage_;
  BlockMatrix ainv(bs);
  const Int nsup = bs.supernode_count();
  if (nsup == 0) {
    lu.normalized_ = true;
    return ainv;
  }

  numeric::TaskGraph graph;
  const bool normalize = !lu.normalized();

  std::vector<numeric::TaskGraph::TaskId> sweep_task(
      static_cast<std::size_t>(nsup));
  for (Int k = 0; k < nsup; ++k) {
    sweep_task[static_cast<std::size_t>(k)] = graph.add(
        (static_cast<std::uint64_t>(nsup - 1 - k) << 32) + 1,
        [&f, &ainv, k] { sweep_supernode(f, ainv, k); });
  }
  for (Int k = 0; k < nsup; ++k) {
    if (normalize) {
      const numeric::TaskGraph::TaskId norm = graph.add(
          static_cast<std::uint64_t>(nsup - 1 - k) << 32, [&f, k] {
            if (f.lpanel(k).rows() > 0)
              trsm(Side::kRight, UpLo::kLower, Trans::kNo, Diag::kUnit, 1.0,
                   f.diag(k), f.lpanel(k));
            if (f.upanel(k).cols() > 0)
              trsm(Side::kLeft, UpLo::kUpper, Trans::kNo, Diag::kNonUnit, 1.0,
                   f.diag(k), f.upanel(k));
          });
      graph.add_edge(norm, sweep_task[static_cast<std::size_t>(k)]);
    }
    // Supernode K reads A^{-1} blocks finalized by every supernode in its
    // union ancestor set (the restricted sums index into those columns).
    for (Int m : bs.struct_of[static_cast<std::size_t>(k)])
      graph.add_edge(sweep_task[static_cast<std::size_t>(m)],
                     sweep_task[static_cast<std::size_t>(k)]);
  }

  graph.run(options);
  lu.normalized_ = true;
  return ainv;
}

}  // namespace psi::nsym
