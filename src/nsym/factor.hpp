/// \file factor.hpp
/// \brief Structurally non-symmetric supernodal LU over the restricted
/// L/U block structures, plus the bitwise-deterministic task-parallel
/// variant.
#pragma once

#include <functional>

#include "nsym/block_matrix.hpp"
#include "numeric/block_matrix.hpp"
#include "numeric/task_graph.hpp"

namespace psi::nsym {

/// Supernodal right-looking LU over the restricted structure.
///
/// After factor():
///  * diag(K) packs the unit-lower L_KK (below diagonal) and U_KK
///    (on/above);
///  * lpanel(K) holds L_{I,K} for I in lstruct(K);
///  * upanel(K) holds U_{K,I} for I in ustruct(K).
/// A = L U exactly (up to roundoff) on the restricted pattern — the
/// directed fill rule guarantees every Schur update target is storable.
/// On a structurally symmetric input the kernel sequence is *identical*
/// to numeric::SupernodalLU::factor(), so the results agree bitwise.
class NsymSupernodalLU {
 public:
  /// Factorizes analysis.matrix; throws psi::Error on a zero pivot.
  static NsymSupernodalLU factor(const NsymAnalysis& analysis);

  /// Numeric-refresh overload over a previously computed structure;
  /// `permuted` must already be in the analyzed order. Both structure
  /// references must outlive the returned factor.
  static NsymSupernodalLU factor(const BlockStructure& blocks,
                                 const NsymStructure& structure,
                                 const SparseMatrix& permuted);

  /// Loader-callback overload (mirrors SupernodalLU::factor).
  static NsymSupernodalLU factor(
      const BlockStructure& blocks, const NsymStructure& structure,
      const std::function<void(NsymBlockMatrix&)>& load);

  /// Task-parallel right-looking factorization with the canonical-ordinal
  /// gating discipline of SupernodalLU::factor_parallel: one update-bundle
  /// task per (source, target column in lstruct ∪ ustruct) pair, applied
  /// strictly in ascending source order under a per-column gate. BITWISE
  /// identical to factor() for any thread count, pool, or tie_break_seed.
  static NsymSupernodalLU factor_parallel(
      const BlockStructure& blocks, const NsymStructure& structure,
      const SparseMatrix& permuted, const numeric::ParallelOptions& options);
  static NsymSupernodalLU factor_parallel(
      const NsymAnalysis& analysis, const numeric::ParallelOptions& options);

  const BlockStructure& blocks() const { return storage_.blocks(); }
  const NsymStructure& structure() const { return storage_.structure(); }
  const NsymBlockMatrix& storage() const { return storage_; }
  NsymBlockMatrix& storage() { return storage_; }

  /// Solve A x = b with the factors (forward + back substitution over the
  /// restricted panels); used by tests to validate the factorization.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// The normalized factors consumed by selected inversion:
  ///   L̂_{I,K} = L_{I,K} (L_KK)^{-1},   Û_{K,I} = (U_KK)^{-1} U_{K,I}.
  /// Overwrites the panels in place (diag stays packed).
  void normalize_panels();
  bool normalized() const { return normalized_; }

 private:
  NsymSupernodalLU(const BlockStructure& blocks, const NsymStructure& structure)
      : storage_(blocks, structure) {}

  /// nsym_selinv_parallel fuses the per-column normalization into its task
  /// graph and flips normalized_ itself.
  friend BlockMatrix nsym_selinv_parallel(NsymSupernodalLU& lu,
                                          const numeric::ParallelOptions& options);

  NsymBlockMatrix storage_;
  bool normalized_ = false;
};

}  // namespace psi::nsym
