#include "nsym/factor.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <utility>

#include "common/check.hpp"

namespace psi::nsym {

namespace {

/// Sorted merge of lstruct(s) and ustruct(s): every target column whose
/// storage receives a Schur contribution from source s (directly or via the
/// opposite-side panel).
std::vector<Int> lu_union(const NsymStructure& st, Int s) {
  const auto& l = st.lstruct_of[static_cast<std::size_t>(s)];
  const auto& u = st.ustruct_of[static_cast<std::size_t>(s)];
  std::vector<Int> merged;
  merged.reserve(l.size() + u.size());
  std::set_union(l.begin(), l.end(), u.begin(), u.end(),
                 std::back_inserter(merged));
  return merged;
}

/// The Schur contributions of one (source, target column) pair, computed
/// task-locally and applied under the column's canonical-order gate
/// (mirrors the symmetric UpdateBundle — the lists just come from the
/// restricted structures).
struct UpdateBundle {
  std::vector<Int> rows;  ///< i of block (i, c), i >= c (lower + diagonal)
  std::vector<DenseMatrix> row_updates;
  std::vector<Int> cols;  ///< j of block (c, j), j > c (upper)
  std::vector<DenseMatrix> col_updates;
};

struct ColumnGate {
  std::mutex mutex;
  std::size_t cursor = 0;
  std::vector<std::unique_ptr<UpdateBundle>> stash;
};

void apply_bundle(NsymBlockMatrix& m, Int c, const UpdateBundle& bundle) {
  for (std::size_t t = 0; t < bundle.rows.size(); ++t)
    m.add_block(bundle.rows[t], c, bundle.row_updates[t], -1.0);
  for (std::size_t t = 0; t < bundle.cols.size(); ++t)
    m.add_block(c, bundle.cols[t], bundle.col_updates[t], -1.0);
}

}  // namespace

NsymSupernodalLU NsymSupernodalLU::factor(const NsymAnalysis& analysis) {
  return factor(analysis.sym.blocks, analysis.structure, analysis.matrix);
}

NsymSupernodalLU NsymSupernodalLU::factor(const BlockStructure& bs,
                                          const NsymStructure& st,
                                          const SparseMatrix& permuted) {
  PSI_CHECK_MSG(permuted.n() == bs.part.n(),
                "nsym factor: matrix dimension " << permuted.n()
                    << " does not match block structure " << bs.part.n());
  return factor(bs, st, [&](NsymBlockMatrix& m) { m.load(permuted); });
}

NsymSupernodalLU NsymSupernodalLU::factor(
    const BlockStructure& bs, const NsymStructure& st,
    const std::function<void(NsymBlockMatrix&)>& load) {
  NsymSupernodalLU lu(bs, st);
  NsymBlockMatrix& m = lu.storage_;
  load(m);
  const Int nsup = bs.supernode_count();

  DenseMatrix lik, ukj, update;
  for (Int k = 0; k < nsup; ++k) {
    // 1. Factor the diagonal block: diag(k) <- packed L_KK \ U_KK.
    getrf_nopivot(m.diag(k));

    // 2. Panel solves over the restricted panels.
    if (m.lpanel(k).rows() > 0)
      trsm(Side::kRight, UpLo::kUpper, Trans::kNo, Diag::kNonUnit, 1.0,
           m.diag(k), m.lpanel(k));
    if (m.upanel(k).cols() > 0)
      trsm(Side::kLeft, UpLo::kLower, Trans::kNo, Diag::kUnit, 1.0,
           m.diag(k), m.upanel(k));

    // 3. Right-looking trailing update: for I in lstruct(K), J in
    //    ustruct(K), A_{I,J} -= L_{I,K} U_{K,J}. Every target (I, J) is
    //    storable by the directed fill rule. On a symmetric structure this
    //    is the identical loop (and kernel-call order) of the symmetric
    //    factor.
    const auto& lstr = st.lstruct_of[static_cast<std::size_t>(k)];
    const auto& ustr = st.ustruct_of[static_cast<std::size_t>(k)];
    for (const Int j : ustr) {
      ukj = m.block(k, j);  // U_{K,J} slice of upanel(k)
      for (const Int i : lstr) {
        lik = m.block(i, k);  // L_{I,K} slice of lpanel(k)
        update.resize(bs.part.size(i), bs.part.size(j));
        update.set_zero();
        gemm(Trans::kNo, Trans::kNo, 1.0, lik, ukj, 0.0, update);
        m.add_block(i, j, update, -1.0);
      }
    }
  }
  return lu;
}

NsymSupernodalLU NsymSupernodalLU::factor_parallel(
    const NsymAnalysis& analysis, const numeric::ParallelOptions& options) {
  return factor_parallel(analysis.sym.blocks, analysis.structure,
                         analysis.matrix, options);
}

NsymSupernodalLU NsymSupernodalLU::factor_parallel(
    const BlockStructure& bs, const NsymStructure& st,
    const SparseMatrix& permuted, const numeric::ParallelOptions& options) {
  PSI_CHECK_MSG(permuted.n() == bs.part.n(),
                "nsym factor_parallel: matrix dimension "
                    << permuted.n() << " does not match block structure "
                    << bs.part.n());
  NsymSupernodalLU lu(bs, st);
  NsymBlockMatrix& m = lu.storage_;
  m.load(permuted);
  const Int nsup = bs.supernode_count();
  if (nsup == 0) return lu;
  const auto& part = bs.part;

  // Contributor sources per target column over the merged structure (the
  // nsym analogue of block_row_structure); sizes the gate stashes.
  std::vector<std::vector<Int>> targets(static_cast<std::size_t>(nsup));
  std::vector<std::size_t> contributors(static_cast<std::size_t>(nsup), 0);
  for (Int s = 0; s < nsup; ++s) {
    targets[static_cast<std::size_t>(s)] = lu_union(st, s);
    for (Int c : targets[static_cast<std::size_t>(s)])
      contributors[static_cast<std::size_t>(c)] += 1;
  }
  std::vector<ColumnGate> gates(static_cast<std::size_t>(nsup));
  for (Int c = 0; c < nsup; ++c)
    gates[static_cast<std::size_t>(c)].stash.resize(
        contributors[static_cast<std::size_t>(c)]);

  numeric::TaskGraph graph;
  std::vector<numeric::TaskGraph::TaskId> factor_task(
      static_cast<std::size_t>(nsup));
  for (Int c = 0; c < nsup; ++c) {
    factor_task[static_cast<std::size_t>(c)] = graph.add(
        static_cast<std::uint64_t>(c) << 32, [&m, c] {
          getrf_nopivot(m.diag(c));
          if (m.lpanel(c).rows() > 0)
            trsm(Side::kRight, UpLo::kUpper, Trans::kNo, Diag::kNonUnit, 1.0,
                 m.diag(c), m.lpanel(c));
          if (m.upanel(c).cols() > 0)
            trsm(Side::kLeft, UpLo::kLower, Trans::kNo, Diag::kUnit, 1.0,
                 m.diag(c), m.upanel(c));
        });
  }

  // One update task per (source s, target column c in lstruct(s)∪ustruct(s)).
  // A task exists even when one side is absent — the target column may only
  // receive row updates (c in ustruct(s)) or only column updates (c in
  // lstruct(s)); either way it occupies its canonical ordinal so the drain
  // order is a pure function of the structure.
  std::vector<std::size_t> next_ordinal(static_cast<std::size_t>(nsup), 0);
  for (Int s = 0; s < nsup; ++s) {
    const std::vector<Int>& tlist = targets[static_cast<std::size_t>(s)];
    for (std::size_t ti = 0; ti < tlist.size(); ++ti) {
      const Int c = tlist[ti];
      const std::size_t ordinal = next_ordinal[static_cast<std::size_t>(c)]++;
      const numeric::TaskGraph::TaskId id = graph.add(
          (static_cast<std::uint64_t>(s) << 32) + 1 + ti,
          [&m, &st, &part, &gates, s, c, ordinal] {
            const auto& lstr = st.lstruct_of[static_cast<std::size_t>(s)];
            const auto& ustr = st.ustruct_of[static_cast<std::size_t>(s)];
            auto bundle = std::make_unique<UpdateBundle>();
            // Lower + diagonal targets: blocks (i, c), i in lstruct(s),
            // i >= c — these need U_{S,C}, present iff c in ustruct(s).
            if (st.in_ustruct(s, c)) {
              const DenseMatrix u_sc = m.block(s, c);
              for (const Int i : lstr) {
                if (i < c) continue;
                const DenseMatrix l_is = m.block(i, s);
                DenseMatrix update(part.size(i), part.size(c));
                gemm(Trans::kNo, Trans::kNo, 1.0, l_is, u_sc, 0.0, update);
                bundle->rows.push_back(i);
                bundle->row_updates.push_back(std::move(update));
              }
            }
            // Upper targets: blocks (c, j), j in ustruct(s), j > c — these
            // need L_{C,S}, present iff c in lstruct(s).
            if (st.in_lstruct(s, c)) {
              const DenseMatrix l_cs = m.block(c, s);
              for (const Int j : ustr) {
                if (j <= c) continue;
                const DenseMatrix u_sj = m.block(s, j);
                DenseMatrix update(part.size(c), part.size(j));
                gemm(Trans::kNo, Trans::kNo, 1.0, l_cs, u_sj, 0.0, update);
                bundle->cols.push_back(j);
                bundle->col_updates.push_back(std::move(update));
              }
            }
            ColumnGate& gate = gates[static_cast<std::size_t>(c)];
            const std::lock_guard<std::mutex> lock(gate.mutex);
            if (gate.cursor == ordinal) {
              apply_bundle(m, c, *bundle);
              bundle.reset();
              ++gate.cursor;
              while (gate.cursor < gate.stash.size() &&
                     gate.stash[gate.cursor] != nullptr) {
                apply_bundle(m, c, *gate.stash[gate.cursor]);
                gate.stash[gate.cursor].reset();
                ++gate.cursor;
              }
            } else {
              gate.stash[ordinal] = std::move(bundle);
            }
          });
      graph.add_edge(factor_task[static_cast<std::size_t>(s)], id);
      graph.add_edge(id, factor_task[static_cast<std::size_t>(c)]);
    }
  }

  graph.run(options);
  return lu;
}

std::vector<double> NsymSupernodalLU::solve(const std::vector<double>& b) const {
  PSI_CHECK(!normalized_);
  const BlockStructure& bs = storage_.blocks();
  const NsymStructure& st = storage_.structure();
  const auto& part = bs.part;
  const Int n = part.n();
  PSI_CHECK(static_cast<Int>(b.size()) == n);
  std::vector<double> x = b;

  // Forward solve L y = b over the restricted lower panels.
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    const Int col0 = part.first_col(k);
    const Int width = part.size(k);
    const DenseMatrix& d = storage_.diag(k);
    for (Int c = 0; c < width; ++c)
      for (Int r = c + 1; r < width; ++r)
        x[static_cast<std::size_t>(col0 + r)] -=
            d(r, c) * x[static_cast<std::size_t>(col0 + c)];
    const DenseMatrix& panel = storage_.lpanel(k);
    Int off = 0;
    for (Int i : st.lstruct_of[static_cast<std::size_t>(k)]) {
      const Int row0 = part.first_col(i);
      for (Int c = 0; c < width; ++c)
        for (Int r = 0; r < part.size(i); ++r)
          x[static_cast<std::size_t>(row0 + r)] -=
              panel(off + r, c) * x[static_cast<std::size_t>(col0 + c)];
      off += part.size(i);
    }
  }

  // Backward solve U x = y over the restricted upper panels.
  for (Int k = bs.supernode_count() - 1; k >= 0; --k) {
    const Int col0 = part.first_col(k);
    const Int width = part.size(k);
    const DenseMatrix& panel = storage_.upanel(k);
    Int off = 0;
    for (Int i : st.ustruct_of[static_cast<std::size_t>(k)]) {
      const Int row0 = part.first_col(i);
      for (Int cc = 0; cc < part.size(i); ++cc)
        for (Int r = 0; r < width; ++r)
          x[static_cast<std::size_t>(col0 + r)] -=
              panel(r, off + cc) * x[static_cast<std::size_t>(row0 + cc)];
      off += part.size(i);
    }
    const DenseMatrix& d = storage_.diag(k);
    for (Int c = width - 1; c >= 0; --c) {
      x[static_cast<std::size_t>(col0 + c)] /= d(c, c);
      for (Int r = 0; r < c; ++r)
        x[static_cast<std::size_t>(col0 + r)] -=
            d(r, c) * x[static_cast<std::size_t>(col0 + c)];
    }
  }
  return x;
}

void NsymSupernodalLU::normalize_panels() {
  PSI_CHECK_MSG(!normalized_, "normalize_panels() called twice");
  const Int nsup = storage_.supernode_count();
  for (Int k = 0; k < nsup; ++k) {
    if (storage_.lpanel(k).rows() > 0)
      trsm(Side::kRight, UpLo::kLower, Trans::kNo, Diag::kUnit, 1.0,
           storage_.diag(k), storage_.lpanel(k));
    if (storage_.upanel(k).cols() > 0)
      trsm(Side::kLeft, UpLo::kUpper, Trans::kNo, Diag::kNonUnit, 1.0,
           storage_.diag(k), storage_.upanel(k));
  }
  normalized_ = true;
}

}  // namespace psi::nsym
