/// \file structure.hpp
/// \brief Symbolic analysis for structurally non-symmetric selected
/// inversion (the companion paper's "PSelInv — the non-symmetric case").
///
/// The non-symmetric pipeline reuses the symmetric machinery on the
/// symmetrized pattern A + A^T — exactly what SuperLU_DIST does for its
/// column elimination tree — and then *restricts* the factor structure to
/// the directed pattern: for each supernode K,
///   * lstruct(K) ⊆ struct(K): supernodes I > K with a nonzero block
///     L_{I,K} (column structure of L),
///   * ustruct(K) ⊆ struct(K): supernodes I > K with a nonzero block
///     U_{K,I} (row structure of U).
/// Both lists are computed by the directed block fill rule
///   i ∈ lstruct(k), j ∈ ustruct(k), i > j  =>  i ∈ lstruct(j)
///   i ∈ lstruct(k), j ∈ ustruct(k), i < j  =>  j ∈ ustruct(i)
/// seeded from the blocks of the permuted input. On a structurally
/// symmetric input, lstruct == ustruct == struct, and the whole pipeline
/// collapses to the symmetric one.
///
/// The selected inverse is computed on the *union* structure (the symmetric
/// closure): blocks of A^{-1} outside lstruct/ustruct are generally nonzero
/// even when the corresponding factor blocks vanish, and the union is
/// exactly the set the restricted recurrences close over.
#pragma once

#include <vector>

#include "symbolic/analysis.hpp"

namespace psi::nsym {

/// Directed L/U block structure over a symmetric-closure BlockStructure.
struct NsymStructure {
  /// lstruct_of[K]: ascending supernodes I > K with L block (I, K) nonzero.
  std::vector<std::vector<Int>> lstruct_of;
  /// ustruct_of[K]: ascending supernodes I > K with U block (K, I) nonzero.
  std::vector<std::vector<Int>> ustruct_of;

  Int supernode_count() const { return static_cast<Int>(lstruct_of.size()); }

  bool in_lstruct(Int k, Int i) const;
  bool in_ustruct(Int k, Int i) const;

  /// Nonzero blocks of L below the diagonal (sum of lstruct sizes).
  Count lower_block_count() const;
  /// Nonzero blocks of U above the diagonal (sum of ustruct sizes).
  Count upper_block_count() const;

  /// Checks both lists are sorted, in range, and subsets of the union
  /// structure `blocks`; throws psi::Error on violation.
  void validate(const BlockStructure& blocks) const;
};

/// Complete non-symmetric symbolic analysis.
struct NsymAnalysis {
  /// Symmetric analysis of the symmetrized pattern A + A^T. `sym.blocks` is
  /// the union structure; `sym.matrix` is the symmetrized matrix (used only
  /// for the permutation pipeline, not for numeric values).
  SymbolicAnalysis sym;
  /// The *original* (directed) matrix permuted by sym.perm; this is what the
  /// numeric factorization loads.
  SparseMatrix matrix;
  NsymStructure structure;
};

/// Runs the non-symmetric pipeline: symmetrize the pattern, analyze with
/// the symmetric machinery, permute the directed input, and compute the
/// restricted L/U block structures via the directed fill rule. The matrix
/// must have a full diagonal (the unpivoted factorization requires it).
NsymAnalysis analyze_nsym(const SparseMatrix& a, const AnalysisOptions& options,
                          const std::vector<std::array<double, 3>>& coords = {});

/// Convenience overload for generated matrices.
NsymAnalysis analyze_nsym(const GeneratedMatrix& gen,
                          const AnalysisOptions& options);

/// Flops of the non-symmetric factorization over the restricted structure
/// (getrf on diagonals, one-sided trsms on each panel, gemm per
/// (lstruct x ustruct) update pair).
Count nsym_factorization_flops(const BlockStructure& blocks,
                               const NsymStructure& structure);

/// Flops of the non-symmetric selected-inversion sweep (the restricted
/// Algorithm 1 analogue over the union structure).
Count nsym_selinv_flops(const BlockStructure& blocks,
                        const NsymStructure& structure);

}  // namespace psi::nsym
