#include "nsym/plan.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/check.hpp"
#include "sparse/dense.hpp"

namespace psi::nsym {

namespace {

/// Deterministic collective id for the shifted scheme's per-tree seed.
/// Kind values are pselinv::CommClass, so nsym tree seeds line up with the
/// symmetric plan's for the phases both share.
std::uint64_t collective_id(int kind, Int k, Int idx) {
  return (static_cast<std::uint64_t>(kind) << 56) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k)) << 24) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(idx));
}

std::vector<int> receivers_without_root(std::vector<int> ranks, int root) {
  ranks.erase(std::remove(ranks.begin(), ranks.end(), root), ranks.end());
  return ranks;
}

std::vector<int> unique_sorted(std::vector<int> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

}  // namespace

NsymPlan::NsymPlan(const BlockStructure& blocks, const NsymStructure& structure,
                   const dist::ProcessGrid& grid,
                   const trees::TreeOptions& tree_options)
    : blocks_(&blocks),
      structure_(&structure),
      grid_(grid),
      map_(grid_),
      tree_options_(tree_options) {
  const Int nsup = blocks.supernode_count();
  PSI_CHECK(structure.supernode_count() == nsup);
  sup_.resize(static_cast<std::size_t>(nsup));

  kt_offset_.resize(static_cast<std::size_t>(nsup) + 1, 0);
  for (Int k = 0; k < nsup; ++k)
    kt_offset_[static_cast<std::size_t>(k) + 1] =
        kt_offset_[static_cast<std::size_t>(k)] +
        static_cast<std::int64_t>(
            blocks.struct_of[static_cast<std::size_t>(k)].size());
  ord_row_.resize(static_cast<std::size_t>(kt_count()));
  ord_col_.resize(static_cast<std::size_t>(kt_count()));
  lpos_.assign(static_cast<std::size_t>(kt_count()), -1);
  upos_.assign(static_cast<std::size_t>(kt_count()), -1);
  ord_lcol_.assign(static_cast<std::size_t>(kt_count()), -1);
  ord_urow_.assign(static_cast<std::size_t>(kt_count()), -1);
  // Scratch counters per grid row/column, reused across supernodes.
  std::vector<std::int32_t> row_seen(static_cast<std::size_t>(grid_.prows()), 0);
  std::vector<std::int32_t> col_seen(static_cast<std::size_t>(grid_.pcols()), 0);

  for (Int k = 0; k < nsup; ++k) {
    NsymSupernodePlan& plan = sup_[static_cast<std::size_t>(k)];
    const auto& uni = blocks.struct_of[static_cast<std::size_t>(k)];
    const auto& lstr = structure.lstruct_of[static_cast<std::size_t>(k)];
    const auto& ustr = structure.ustruct_of[static_cast<std::size_t>(k)];
    const int diag_owner = map_.owner(k, k);
    const int my_pcol = map_.pcol_of(k);
    const int my_prow = map_.prow_of(k);

    // Unique grid rows/columns covering U(K) and the restricted sides.
    plan.prows.reserve(uni.size());
    plan.pcols.reserve(uni.size());
    for (Int j : uni) plan.prows.push_back(map_.prow_of(j));
    for (Int i : uni) plan.pcols.push_back(map_.pcol_of(i));
    plan.prows = unique_sorted(std::move(plan.prows));
    plan.pcols = unique_sorted(std::move(plan.pcols));
    for (Int i : lstr) plan.prows_l.push_back(map_.prow_of(i));
    for (Int i : lstr) plan.pcols_l.push_back(map_.pcol_of(i));
    for (Int i : ustr) plan.prows_u.push_back(map_.prow_of(i));
    for (Int i : ustr) plan.pcols_u.push_back(map_.pcol_of(i));
    plan.prows_l = unique_sorted(std::move(plan.prows_l));
    plan.pcols_l = unique_sorted(std::move(plan.pcols_l));
    plan.prows_u = unique_sorted(std::move(plan.prows_u));
    plan.pcols_u = unique_sorted(std::move(plan.pcols_u));

    // Dense-state index tables over the union set.
    for (Int t = 0; t < static_cast<Int>(uni.size()); ++t) {
      const Int b = uni[static_cast<std::size_t>(t)];
      const auto g = static_cast<std::size_t>(kt_id(k, t));
      ord_row_[g] = row_seen[static_cast<std::size_t>(map_.prow_of(b))]++;
      ord_col_[g] = col_seen[static_cast<std::size_t>(map_.pcol_of(b))]++;
    }
    plan.prow_counts.reserve(plan.prows.size());
    for (int pr : plan.prows) {
      plan.prow_counts.push_back(row_seen[static_cast<std::size_t>(pr)]);
      row_seen[static_cast<std::size_t>(pr)] = 0;
    }
    plan.pcol_counts.reserve(plan.pcols.size());
    for (int pc : plan.pcols) {
      plan.pcol_counts.push_back(col_seen[static_cast<std::size_t>(pc)]);
      col_seen[static_cast<std::size_t>(pc)] = 0;
    }

    // Restricted positions + ordinals. lstruct/ustruct are ascending subsets
    // of the union list, so one forward scan aligns them.
    {
      std::size_t li = 0, ui = 0;
      for (Int t = 0; t < static_cast<Int>(uni.size()); ++t) {
        const Int b = uni[static_cast<std::size_t>(t)];
        const auto g = static_cast<std::size_t>(kt_id(k, t));
        if (li < lstr.size() && lstr[li] == b) {
          lpos_[g] = static_cast<std::int32_t>(li++);
          ord_lcol_[g] = col_seen[static_cast<std::size_t>(map_.pcol_of(b))]++;
        }
        if (ui < ustr.size() && ustr[ui] == b) {
          upos_[g] = static_cast<std::int32_t>(ui++);
          ord_urow_[g] = row_seen[static_cast<std::size_t>(map_.prow_of(b))]++;
        }
      }
      PSI_ASSERT(li == lstr.size() && ui == ustr.size());
      plan.pcol_l_counts.reserve(plan.pcols_l.size());
      for (int pc : plan.pcols_l) {
        plan.pcol_l_counts.push_back(col_seen[static_cast<std::size_t>(pc)]);
        col_seen[static_cast<std::size_t>(pc)] = 0;
      }
      plan.prow_u_counts.reserve(plan.prows_u.size());
      for (int pr : plan.prows_u) {
        plan.prow_u_counts.push_back(row_seen[static_cast<std::size_t>(pr)]);
        row_seen[static_cast<std::size_t>(pr)] = 0;
      }
    }

    plan.pcols_a = plan.pcols;
    if (!std::binary_search(plan.pcols_a.begin(), plan.pcols_a.end(), my_pcol))
      plan.pcols_a.insert(
          std::lower_bound(plan.pcols_a.begin(), plan.pcols_a.end(), my_pcol),
          my_pcol);
    plan.prows_b = plan.prows;
    if (!std::binary_search(plan.prows_b.begin(), plan.prows_b.end(), my_prow))
      plan.prows_b.insert(
          std::lower_bound(plan.prows_b.begin(), plan.prows_b.end(), my_prow),
          my_prow);

    // Column side: diag broadcast to L-panel owner rows; row side: diag
    // broadcast to U-panel owner columns; diagonal-update reduce over the
    // rows holding A^{-1}_{ustruct,K}.
    std::vector<int> lpanel_ranks;
    lpanel_ranks.reserve(plan.prows_l.size());
    for (int pr : plan.prows_l) lpanel_ranks.push_back(grid_.rank_of(pr, my_pcol));
    plan.diag_bcast = trees::CommTree::build(
        tree_options_, diag_owner,
        receivers_without_root(lpanel_ranks, diag_owner),
        collective_id(pselinv::kDiagBcast, k, 0));

    std::vector<int> upanel_ranks;
    upanel_ranks.reserve(plan.pcols_u.size());
    for (int pc : plan.pcols_u) upanel_ranks.push_back(grid_.rank_of(my_prow, pc));
    plan.diag_row_bcast = trees::CommTree::build(
        tree_options_, diag_owner,
        receivers_without_root(upanel_ranks, diag_owner),
        collective_id(pselinv::kDiagRowBcast, k, 0));

    std::vector<int> diag_contributors;
    diag_contributors.reserve(plan.prows_u.size());
    for (int pr : plan.prows_u)
      diag_contributors.push_back(grid_.rank_of(pr, my_pcol));
    plan.col_reduce = trees::CommTree::build(
        tree_options_, diag_owner,
        receivers_without_root(diag_contributors, diag_owner),
        collective_id(pselinv::kColReduce, k, 0));

    plan.col_bcast.reserve(uni.size());
    plan.row_reduce.reserve(uni.size());
    plan.row_bcast.reserve(uni.size());
    plan.col_reduce_up.reserve(uni.size());
    plan.cross_src.reserve(uni.size());
    plan.cross_dst.reserve(uni.size());
    for (Int t = 0; t < static_cast<Int>(uni.size()); ++t) {
      const Int b = uni[static_cast<std::size_t>(t)];
      const auto g = static_cast<std::size_t>(kt_id(k, t));
      plan.cross_src.push_back(map_.owner(b, k));
      plan.cross_dst.push_back(map_.owner(k, b));

      // Col-Bcast of L̂_{B,K} down column pc(B) to every union grid row
      // (the A^{-1}_{J,B} operand owners). Real only for lstruct entries.
      const int cb_root = map_.owner(k, b);
      std::vector<int> cb_consumers;
      if (lpos_[g] >= 0) {
        cb_consumers.reserve(plan.prows.size());
        for (int pr : plan.prows)
          cb_consumers.push_back(grid_.rank_of(pr, map_.pcol_of(b)));
      }
      plan.col_bcast.push_back(trees::CommTree::build(
          tree_options_, cb_root,
          receivers_without_root(std::move(cb_consumers), cb_root),
          collective_id(pselinv::kColBcast, k, t)));

      // Row-Reduce of A^{-1}_{B,K} along row pr(B): contributions live only
      // in the grid columns hosting lstruct entries. Placeholder when
      // lstruct(K) is empty (the block is an exact zero, finalized locally).
      const int rr_root = map_.owner(b, k);
      std::vector<int> rr_contributors;
      if (!lstr.empty()) {
        rr_contributors.reserve(plan.pcols_l.size());
        for (int pc : plan.pcols_l)
          rr_contributors.push_back(grid_.rank_of(map_.prow_of(b), pc));
        std::sort(rr_contributors.begin(), rr_contributors.end());
      }
      plan.row_reduce.push_back(trees::CommTree::build(
          tree_options_, rr_root,
          receivers_without_root(std::move(rr_contributors), rr_root),
          collective_id(pselinv::kRowReduce, k, t)));

      // Row-Bcast of Û_{K,B} along row pr(B) to every union grid column
      // (the A^{-1}_{B,J} operand owners). Real only for ustruct entries.
      std::vector<int> rb_consumers;
      if (upos_[g] >= 0) {
        rb_consumers.reserve(plan.pcols.size());
        for (int pc : plan.pcols)
          rb_consumers.push_back(grid_.rank_of(map_.prow_of(b), pc));
        std::sort(rb_consumers.begin(), rb_consumers.end());
      }
      plan.row_bcast.push_back(trees::CommTree::build(
          tree_options_, rr_root,
          receivers_without_root(std::move(rb_consumers), rr_root),
          collective_id(pselinv::kRowBcast, k, t)));

      // Col-Reduce-Up of A^{-1}_{K,B} down column pc(B): contributions only
      // from the grid rows hosting ustruct entries. Placeholder when
      // ustruct(K) is empty.
      std::vector<int> cu_contributors;
      if (!ustr.empty()) {
        cu_contributors.reserve(plan.prows_u.size());
        for (int pr : plan.prows_u)
          cu_contributors.push_back(grid_.rank_of(pr, map_.pcol_of(b)));
        std::sort(cu_contributors.begin(), cu_contributors.end());
      }
      plan.col_reduce_up.push_back(trees::CommTree::build(
          tree_options_, cb_root,
          receivers_without_root(std::move(cu_contributors), cb_root),
          collective_id(pselinv::kColReduceUp, k, t)));
    }
  }
}

Count NsymPlan::block_bytes(Int i, Int k) const {
  return dense_bytes(blocks_->part.size(i), blocks_->part.size(k));
}

std::int64_t NsymPlan::block_id(Int row, Int col) const {
  if (row == col) return diag_block_id(row);
  const Int c = std::min(row, col);
  const Int r = std::max(row, col);
  const auto& str = blocks_->struct_of[static_cast<std::size_t>(c)];
  const auto it = std::lower_bound(str.begin(), str.end(), r);
  PSI_ASSERT(it != str.end() && *it == r);
  const Int t = static_cast<Int>(it - str.begin());
  return row > col ? lower_block_id(c, t) : upper_block_id(c, t);
}

Count NsymPlan::distinct_communicators() const {
  std::unordered_set<std::uint64_t> seen;
  auto note = [&](const trees::CommTree& tree) {
    if (tree.participant_count() < 2) return;
    std::vector<int> ranks = tree.participants();
    std::sort(ranks.begin(), ranks.end());
    std::uint64_t h = 0x811c9dc5ULL;
    for (int r : ranks) h = (h ^ static_cast<std::uint64_t>(r)) * 0x100000001b3ULL;
    seen.insert(h);
  };
  for (const NsymSupernodePlan& plan : sup_) {
    note(plan.diag_bcast);
    note(plan.diag_row_bcast);
    note(plan.col_reduce);
    for (const auto& tree : plan.col_bcast) note(tree);
    for (const auto& tree : plan.row_reduce) note(tree);
    for (const auto& tree : plan.row_bcast) note(tree);
    for (const auto& tree : plan.col_reduce_up) note(tree);
  }
  return static_cast<Count>(seen.size());
}

Count NsymPlan::total_collectives() const {
  Count total = 0;
  for (const NsymSupernodePlan& plan : sup_)
    total += 3 + static_cast<Count>(plan.col_bcast.size()) +
             static_cast<Count>(plan.row_reduce.size()) +
             static_cast<Count>(plan.row_bcast.size()) +
             static_cast<Count>(plan.col_reduce_up.size());
  return total;
}

std::size_t NsymPlan::memory_bytes() const {
  const auto tree_bytes = [](const trees::CommTree& tree) {
    return sizeof(trees::CommTree) + tree.memory_bytes();
  };
  std::size_t bytes =
      sup_.capacity() * sizeof(NsymSupernodePlan) +
      kt_offset_.capacity() * sizeof(std::int64_t) +
      (ord_row_.capacity() + ord_col_.capacity() + lpos_.capacity() +
       upos_.capacity() + ord_lcol_.capacity() + ord_urow_.capacity()) *
          sizeof(std::int32_t);
  for (const NsymSupernodePlan& plan : sup_) {
    bytes += (plan.prows.size() + plan.pcols.size() + plan.pcols_a.size() +
              plan.prows_b.size() + plan.prows_l.size() + plan.pcols_l.size() +
              plan.prows_u.size() + plan.pcols_u.size() +
              plan.cross_dst.size() + plan.cross_src.size()) *
                 sizeof(int) +
             (plan.prow_counts.size() + plan.pcol_counts.size() +
              plan.pcol_l_counts.size() + plan.prow_u_counts.size()) *
                 sizeof(std::int32_t);
    bytes += tree_bytes(plan.diag_bcast) + tree_bytes(plan.diag_row_bcast) +
             tree_bytes(plan.col_reduce);
    for (const auto& tree : plan.col_bcast) bytes += tree_bytes(tree);
    for (const auto& tree : plan.row_reduce) bytes += tree_bytes(tree);
    for (const auto& tree : plan.row_bcast) bytes += tree_bytes(tree);
    for (const auto& tree : plan.col_reduce_up) bytes += tree_bytes(tree);
  }
  return bytes;
}

}  // namespace psi::nsym
