/// \file selinv.hpp
/// \brief Non-symmetric selected inversion (the restricted Algorithm 1
/// analogue of the companion paper).
///
/// Given the restricted LU factors, computes every block of A^{-1} on the
/// *union* (symmetric-closure) block pattern. The recurrences sum only over
/// the restricted structures,
///   A^{-1}_{J,K} = - Σ_{I ∈ lstruct(K)} A^{-1}_{J,I} L̂_{I,K}
///   A^{-1}_{K,J} = - Σ_{I ∈ ustruct(K)} Û_{K,I} A^{-1}_{I,J}
///   A^{-1}_{K,K} = U_KK^{-1} L_KK^{-1} - Σ_{J ∈ ustruct(K)} Û_{K,J} A^{-1}_{J,K}
/// with J ranging over the union ancestor set — blocks of A^{-1} outside
/// lstruct/ustruct are generally nonzero and the union closure makes every
/// summand block addressable. On a symmetric structure this is exactly
/// Algorithm 1.
#pragma once

#include "numeric/block_matrix.hpp"
#include "nsym/factor.hpp"

namespace psi::nsym {

/// Runs the restricted sweep sequentially. Normalizes the factor panels in
/// place if the caller has not done so. The selected inverse comes back as
/// a plain numeric::BlockMatrix over the union structure (both triangles).
BlockMatrix nsym_selected_inversion(NsymSupernodalLU& lu);

/// Task-parallel sweep over a numeric::TaskGraph (the nsym analogue of
/// selinv_parallel): per-supernode normalization tasks feeding sweep tasks
/// descending the union elimination structure. Each sweep task runs the
/// exact sequential per-supernode kernel sequence and writes only its own
/// block column, so the result is BITWISE identical to
/// nsym_selected_inversion() for any thread count, pool, or tie_break_seed.
BlockMatrix nsym_selinv_parallel(NsymSupernodalLU& lu,
                                 const numeric::ParallelOptions& options);

}  // namespace psi::nsym
