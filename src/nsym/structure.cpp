#include "nsym/structure.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "sparse/dense.hpp"

namespace psi::nsym {

namespace {

bool sorted_contains(const std::vector<Int>& list, Int value) {
  return std::binary_search(list.begin(), list.end(), value);
}

/// Symmetrized copy of `a`: pattern of A + A^T, values taken from A where
/// present and 0 on the transposed-only fill positions. Only the pattern
/// feeds the symbolic pipeline; the values just keep SparseMatrix valid.
SparseMatrix symmetrized_matrix(const SparseMatrix& a) {
  SparseMatrix sym;
  sym.pattern = a.pattern.symmetrized();
  sym.values.resize(sym.pattern.row_idx.size(), 0.0);
  std::size_t p = 0;
  for (Int j = 0; j < sym.pattern.n; ++j) {
    const Int end = sym.pattern.col_ptr[static_cast<std::size_t>(j) + 1];
    for (Int q = sym.pattern.col_ptr[static_cast<std::size_t>(j)]; q < end;
         ++q, ++p)
      sym.values[p] = a.value_at(sym.pattern.row_idx[static_cast<std::size_t>(q)], j);
  }
  return sym;
}

NsymStructure build_structure(const BlockStructure& blocks,
                              const SparseMatrix& permuted) {
  const Int nsup = blocks.supernode_count();
  NsymStructure st;
  st.lstruct_of.assign(static_cast<std::size_t>(nsup), {});
  st.ustruct_of.assign(static_cast<std::size_t>(nsup), {});

  // Seed with the blocks of the permuted directed input: a scalar entry
  // (r, c) lands in block (sup(r), sup(c)) — below the block diagonal it is
  // an L block of column sup(c), above it a U block of row sup(r).
  const std::vector<Int>& sup_of = blocks.part.sup_of_col;
  const SparsityPattern& pattern = permuted.pattern;
  for (Int c = 0; c < pattern.n; ++c) {
    const Int kc = sup_of[static_cast<std::size_t>(c)];
    const Int end = pattern.col_ptr[static_cast<std::size_t>(c) + 1];
    for (Int q = pattern.col_ptr[static_cast<std::size_t>(c)]; q < end; ++q) {
      const Int kr = sup_of[static_cast<std::size_t>(pattern.row_idx[static_cast<std::size_t>(q)])];
      if (kr > kc)
        st.lstruct_of[static_cast<std::size_t>(kc)].push_back(kr);
      else if (kr < kc)
        st.ustruct_of[static_cast<std::size_t>(kr)].push_back(kc);
    }
  }

  // Directed block fill, ascending over pivots: eliminating supernode k
  // couples every L target i with every U target j. All produced targets
  // are > k, so by the time a supernode becomes the pivot its lists are
  // final and one sort+unique per pivot suffices.
  for (Int k = 0; k < nsup; ++k) {
    std::vector<Int>& lk = st.lstruct_of[static_cast<std::size_t>(k)];
    std::vector<Int>& uk = st.ustruct_of[static_cast<std::size_t>(k)];
    std::sort(lk.begin(), lk.end());
    lk.erase(std::unique(lk.begin(), lk.end()), lk.end());
    std::sort(uk.begin(), uk.end());
    uk.erase(std::unique(uk.begin(), uk.end()), uk.end());
    for (Int i : lk) {
      for (Int j : uk) {
        if (i > j)
          st.lstruct_of[static_cast<std::size_t>(j)].push_back(i);
        else if (i < j)
          st.ustruct_of[static_cast<std::size_t>(i)].push_back(j);
      }
    }
  }
  return st;
}

}  // namespace

bool NsymStructure::in_lstruct(Int k, Int i) const {
  return sorted_contains(lstruct_of[static_cast<std::size_t>(k)], i);
}

bool NsymStructure::in_ustruct(Int k, Int i) const {
  return sorted_contains(ustruct_of[static_cast<std::size_t>(k)], i);
}

Count NsymStructure::lower_block_count() const {
  Count total = 0;
  for (const std::vector<Int>& list : lstruct_of)
    total += static_cast<Count>(list.size());
  return total;
}

Count NsymStructure::upper_block_count() const {
  Count total = 0;
  for (const std::vector<Int>& list : ustruct_of)
    total += static_cast<Count>(list.size());
  return total;
}

void NsymStructure::validate(const BlockStructure& blocks) const {
  const Int nsup = blocks.supernode_count();
  PSI_CHECK_MSG(supernode_count() == nsup,
                "nsym structure: supernode count mismatch");
  for (Int k = 0; k < nsup; ++k) {
    const std::vector<Int>& uni = blocks.struct_of[static_cast<std::size_t>(k)];
    for (const std::vector<Int>* list :
         {&lstruct_of[static_cast<std::size_t>(k)],
          &ustruct_of[static_cast<std::size_t>(k)]}) {
      PSI_CHECK_MSG(std::is_sorted(list->begin(), list->end()),
                    "nsym structure: unsorted list at supernode " << k);
      PSI_CHECK_MSG(
          std::adjacent_find(list->begin(), list->end()) == list->end(),
          "nsym structure: duplicate entry at supernode " << k);
      for (Int i : *list) {
        PSI_CHECK_MSG(i > k && i < nsup,
                      "nsym structure: out-of-range target " << i
                          << " at supernode " << k);
        PSI_CHECK_MSG(std::binary_search(uni.begin(), uni.end(), i),
                      "nsym structure: target " << i << " of supernode " << k
                          << " not in the union structure");
      }
    }
  }
}

NsymAnalysis analyze_nsym(const SparseMatrix& a, const AnalysisOptions& options,
                          const std::vector<std::array<double, 3>>& coords) {
  a.validate();
  for (Int i = 0; i < a.n(); ++i)
    PSI_CHECK_MSG(a.pattern.has_entry(i, i),
                  "analyze_nsym: missing diagonal entry at row " << i);
  NsymAnalysis an;
  an.sym = analyze(symmetrized_matrix(a), options, coords);
  an.matrix = permute_symmetric(a, an.sym.perm.old_to_new());
  an.structure = build_structure(an.sym.blocks, an.matrix);
  an.structure.validate(an.sym.blocks);
  return an;
}

NsymAnalysis analyze_nsym(const GeneratedMatrix& gen,
                          const AnalysisOptions& options) {
  return analyze_nsym(gen.matrix, options, gen.coords);
}

Count nsym_factorization_flops(const BlockStructure& blocks,
                               const NsymStructure& structure) {
  const Int nsup = blocks.supernode_count();
  Count total = 0;
  for (Int k = 0; k < nsup; ++k) {
    const Int w = blocks.part.size(k);
    total += getrf_flops(w);
    Int lrows = 0;
    for (Int i : structure.lstruct_of[static_cast<std::size_t>(k)])
      lrows += blocks.part.size(i);
    Int ucols = 0;
    for (Int j : structure.ustruct_of[static_cast<std::size_t>(k)])
      ucols += blocks.part.size(j);
    if (lrows > 0) total += trsm_flops(w, lrows);
    if (ucols > 0) total += trsm_flops(w, ucols);
    for (Int j : structure.ustruct_of[static_cast<std::size_t>(k)])
      for (Int i : structure.lstruct_of[static_cast<std::size_t>(k)])
        total += gemm_flops(blocks.part.size(i), blocks.part.size(j), w);
  }
  return total;
}

Count nsym_selinv_flops(const BlockStructure& blocks,
                        const NsymStructure& structure) {
  const Int nsup = blocks.supernode_count();
  Count total = 0;
  for (Int k = 0; k < nsup; ++k) {
    const Int w = blocks.part.size(k);
    // Panel normalization (the first loop of the algorithm).
    Int lrows = 0;
    for (Int i : structure.lstruct_of[static_cast<std::size_t>(k)])
      lrows += blocks.part.size(i);
    Int ucols = 0;
    for (Int j : structure.ustruct_of[static_cast<std::size_t>(k)])
      ucols += blocks.part.size(j);
    if (lrows > 0) total += trsm_flops(w, lrows);
    if (ucols > 0) total += trsm_flops(w, ucols);
    // Diagonal seed A^{-1}_{K,K} = U_KK^{-1} L_KK^{-1} (two triangular
    // solves against the identity).
    total += 2 * trsm_flops(w, w);
    for (Int j : blocks.struct_of[static_cast<std::size_t>(k)]) {
      const Int wj = blocks.part.size(j);
      for (Int i : structure.lstruct_of[static_cast<std::size_t>(k)])
        total += gemm_flops(wj, w, blocks.part.size(i));
      for (Int i : structure.ustruct_of[static_cast<std::size_t>(k)])
        total += gemm_flops(w, wj, blocks.part.size(i));
    }
    for (Int j : structure.ustruct_of[static_cast<std::size_t>(k)])
      total += gemm_flops(w, w, blocks.part.size(j));
  }
  return total;
}

}  // namespace psi::nsym
