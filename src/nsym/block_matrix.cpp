#include "nsym/block_matrix.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace psi::nsym {

namespace {

Int list_position(const std::vector<Int>& list, Int i) {
  const auto it = std::lower_bound(list.begin(), list.end(), i);
  if (it == list.end() || *it != i) return -1;
  return static_cast<Int>(it - list.begin());
}

}  // namespace

NsymBlockMatrix::NsymBlockMatrix(const BlockStructure& blocks,
                                 const NsymStructure& structure)
    : blocks_(&blocks), structure_(&structure) {
  const Int nsup = blocks.supernode_count();
  PSI_CHECK(structure.supernode_count() == nsup);
  cols_.resize(static_cast<std::size_t>(nsup));
  loffsets_.resize(static_cast<std::size_t>(nsup));
  uoffsets_.resize(static_cast<std::size_t>(nsup));
  for (Int k = 0; k < nsup; ++k) {
    const Int width = blocks.part.size(k);
    const auto& lstr = structure.lstruct_of[static_cast<std::size_t>(k)];
    const auto& ustr = structure.ustruct_of[static_cast<std::size_t>(k)];
    auto& loffs = loffsets_[static_cast<std::size_t>(k)];
    loffs.resize(lstr.size() + 1);
    loffs[0] = 0;
    for (std::size_t t = 0; t < lstr.size(); ++t)
      loffs[t + 1] = loffs[t] + blocks.part.size(lstr[t]);
    auto& uoffs = uoffsets_[static_cast<std::size_t>(k)];
    uoffs.resize(ustr.size() + 1);
    uoffs[0] = 0;
    for (std::size_t t = 0; t < ustr.size(); ++t)
      uoffs[t + 1] = uoffs[t] + blocks.part.size(ustr[t]);
    auto& col = cols_[static_cast<std::size_t>(k)];
    col.diag.resize(width, width);
    col.lpanel.resize(loffs.back(), width);
    col.upanel.resize(width, uoffs.back());
  }
}

Int NsymBlockMatrix::lpos(Int k, Int i) const {
  return list_position(structure_->lstruct_of[static_cast<std::size_t>(k)], i);
}

Int NsymBlockMatrix::upos(Int k, Int i) const {
  return list_position(structure_->ustruct_of[static_cast<std::size_t>(k)], i);
}

Int NsymBlockMatrix::lower_offset(Int k, Int i) const {
  const Int pos = lpos(k, i);
  PSI_CHECK_MSG(pos >= 0, "L block (" << i << "," << k << ") not in lstruct");
  return loffsets_[static_cast<std::size_t>(k)][static_cast<std::size_t>(pos)];
}

Int NsymBlockMatrix::upper_offset(Int k, Int i) const {
  const Int pos = upos(k, i);
  PSI_CHECK_MSG(pos >= 0, "U block (" << k << "," << i << ") not in ustruct");
  return uoffsets_[static_cast<std::size_t>(k)][static_cast<std::size_t>(pos)];
}

Int NsymBlockMatrix::lower_rows(Int k) const {
  return loffsets_[static_cast<std::size_t>(k)].back();
}

Int NsymBlockMatrix::upper_cols(Int k) const {
  return uoffsets_[static_cast<std::size_t>(k)].back();
}

DenseMatrix NsymBlockMatrix::block(Int i, Int k) const {
  const auto& part = blocks_->part;
  if (i == k) return diag(k);
  if (i > k) {
    const Int off = lower_offset(k, i);
    DenseMatrix out(part.size(i), part.size(k));
    const DenseMatrix& panel = lpanel(k);
    for (Int c = 0; c < out.cols(); ++c)
      for (Int r = 0; r < out.rows(); ++r) out(r, c) = panel(off + r, c);
    return out;
  }
  // i < k: upper block (i, k), stored in upanel(i) at the column offset of k.
  const Int off = upper_offset(i, k);
  DenseMatrix out(part.size(i), part.size(k));
  const DenseMatrix& panel = upanel(i);
  for (Int c = 0; c < out.cols(); ++c)
    for (Int r = 0; r < out.rows(); ++r) out(r, c) = panel(r, off + c);
  return out;
}

void NsymBlockMatrix::set_block(Int i, Int k, const DenseMatrix& value) {
  const auto& part = blocks_->part;
  PSI_CHECK(value.rows() == part.size(i) && value.cols() == part.size(k));
  if (i == k) {
    diag(k) = value;
    return;
  }
  if (i > k) {
    const Int off = lower_offset(k, i);
    DenseMatrix& panel = lpanel(k);
    for (Int c = 0; c < value.cols(); ++c)
      for (Int r = 0; r < value.rows(); ++r) panel(off + r, c) = value(r, c);
    return;
  }
  const Int off = upper_offset(i, k);
  DenseMatrix& panel = upanel(i);
  for (Int c = 0; c < value.cols(); ++c)
    for (Int r = 0; r < value.rows(); ++r) panel(r, off + c) = value(r, c);
}

void NsymBlockMatrix::add_block(Int i, Int k, const DenseMatrix& value,
                                double scale) {
  const auto& part = blocks_->part;
  PSI_CHECK(value.rows() == part.size(i) && value.cols() == part.size(k));
  if (i == k) {
    DenseMatrix& d = diag(k);
    for (Int c = 0; c < value.cols(); ++c)
      for (Int r = 0; r < value.rows(); ++r) d(r, c) += scale * value(r, c);
    return;
  }
  if (i > k) {
    const Int off = lower_offset(k, i);
    DenseMatrix& panel = lpanel(k);
    for (Int c = 0; c < value.cols(); ++c)
      for (Int r = 0; r < value.rows(); ++r)
        panel(off + r, c) += scale * value(r, c);
    return;
  }
  const Int off = upper_offset(i, k);
  DenseMatrix& panel = upanel(i);
  for (Int c = 0; c < value.cols(); ++c)
    for (Int r = 0; r < value.rows(); ++r)
      panel(r, off + c) += scale * value(r, c);
}

void NsymBlockMatrix::load(const SparseMatrix& a) {
  const auto& part = blocks_->part;
  PSI_CHECK(a.n() == part.n());
  for (Int j = 0; j < a.n(); ++j) {
    const Int k = part.sup_of_col[static_cast<std::size_t>(j)];
    const Int jc = j - part.first_col(k);
    for (Int p = a.pattern.col_ptr[j]; p < a.pattern.col_ptr[j + 1]; ++p) {
      const Int row = a.pattern.row_idx[p];
      const double v = a.values[static_cast<std::size_t>(p)];
      const Int bi = part.sup_of_col[static_cast<std::size_t>(row)];
      const Int ir = row - part.first_col(bi);
      if (bi == k) {
        diag(k)(ir, jc) = v;
      } else if (bi > k) {
        lpanel(k)(lower_offset(k, bi) + ir, jc) = v;
      } else {
        upanel(bi)(ir, upper_offset(bi, k) + jc) = v;
      }
    }
  }
}

DenseMatrix NsymBlockMatrix::to_dense() const {
  const auto& part = blocks_->part;
  const Int n = part.n();
  DenseMatrix out(n, n);
  for (Int k = 0; k < supernode_count(); ++k) {
    const Int col0 = part.first_col(k);
    const Int width = part.size(k);
    for (Int c = 0; c < width; ++c)
      for (Int r = 0; r < width; ++r) out(col0 + r, col0 + c) = diag(k)(r, c);
    const auto& lstr = structure_->lstruct_of[static_cast<std::size_t>(k)];
    for (std::size_t t = 0; t < lstr.size(); ++t) {
      const Int i = lstr[t];
      const Int row0 = part.first_col(i);
      const Int off = loffsets_[static_cast<std::size_t>(k)][t];
      for (Int c = 0; c < width; ++c)
        for (Int r = 0; r < part.size(i); ++r)
          out(row0 + r, col0 + c) = lpanel(k)(off + r, c);
    }
    const auto& ustr = structure_->ustruct_of[static_cast<std::size_t>(k)];
    for (std::size_t t = 0; t < ustr.size(); ++t) {
      const Int i = ustr[t];
      const Int ucol0 = part.first_col(i);
      const Int off = uoffsets_[static_cast<std::size_t>(k)][t];
      for (Int c = 0; c < part.size(i); ++c)
        for (Int r = 0; r < width; ++r)
          out(col0 + r, ucol0 + c) = upanel(k)(r, off + c);
    }
  }
  return out;
}

}  // namespace psi::nsym
