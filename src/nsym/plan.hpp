/// \file plan.hpp
/// \brief Communication plan for non-symmetric selected inversion: paired
/// row-side and column-side restricted collectives per supernode.
///
/// The symmetric-structure plan (pselinv::Plan) hosts one tree family per
/// supernode because lstruct(K) == ustruct(K) == C(K). With a structurally
/// non-symmetric factorization the two sides differ, so every supernode K
/// carries *paired* trees over the union ancestor set U(K) = lstruct(K) ∪
/// ustruct(K):
///
///  column side (L factor / lower triangle of A^{-1}):
///   * DiagBcast   — packed diag down column pc(K) to L-panel owner rows
///                   prows_l (skipped when lstruct(K) is empty).
///   * CrossSend   — L̂_{I,K} from (pr(I),pc(K)) to (pr(K),pc(I)), I∈lstruct.
///   * ColBcast    — L̂_{I,K} down column pc(I) to the owners of the
///                   A^{-1}_{*,I} operand blocks (per lstruct entry).
///   * RowReduce   — Σ_I A^{-1}_{J,I} L̂_{I,K} along row pr(J) onto
///                   (pr(J),pc(K)), contributions only from columns pcols_l.
///
///  row side (U factor / upper triangle of A^{-1}):
///   * DiagRowBcast — packed diag along row pr(K) to U-panel owner columns
///                    pcols_u (skipped when ustruct(K) is empty).
///   * CrossSendU   — Û_{K,I} from (pr(K),pc(I)) to (pr(I),pc(K)),
///                    I∈ustruct (also feeds the diagonal update terms).
///   * RowBcast     — Û_{K,I} along row pr(I) to the owners of the
///                    A^{-1}_{I,*} operand blocks (per ustruct entry).
///   * ColReduceUp  — Σ_I Û_{K,I} A^{-1}_{I,J} down column pc(J) onto
///                    (pr(K),pc(J)), contributions only from rows prows_u.
///   * ColReduce    — diagonal update Σ_J Û_{K,J} A^{-1}_{J,K} up column
///                    pc(K) onto the diagonal owner, rows prows_u.
///
/// Entries of U(K) outside a side's restricted structure still own result
/// blocks of A^{-1} (exact zeros when the matching restricted sum is empty);
/// their trees on the absent side are root-only placeholders so that tree
/// vectors stay aligned with U(K) and contribute nothing to traffic.
#pragma once

#include <vector>

#include "dist/process_grid.hpp"
#include "nsym/structure.hpp"
#include "pselinv/plan.hpp"
#include "trees/comm_tree.hpp"

namespace psi::nsym {

/// Traffic classes are shared with the symmetric engine so observability,
/// volume reports, and fault rules use one vocabulary.
using pselinv::CommClass;
using pselinv::kCommClassCount;

struct NsymSupernodePlan {
  /// Unique grid rows/columns hosting blocks of the union set U(K).
  std::vector<int> prows;
  std::vector<int> pcols;
  /// Per-grid-row/column U(K) entry counts, aligned with prows/pcols.
  std::vector<std::int32_t> prow_counts;
  std::vector<std::int32_t> pcol_counts;
  /// pcols ∪ {pc(K)} and prows ∪ {pr(K)}, ascending (state-arena support).
  std::vector<int> pcols_a;
  std::vector<int> prows_b;

  /// Restricted participant lists: grid rows/columns of lstruct(K) and
  /// ustruct(K) entries (ascending, unique).
  std::vector<int> prows_l;
  std::vector<int> pcols_l;
  std::vector<int> prows_u;
  std::vector<int> pcols_u;
  /// Per-column lstruct entry counts (aligned with pcols_l) and per-row
  /// ustruct entry counts (aligned with prows_u) — resilient ready-table
  /// and reduce-state sizing.
  std::vector<std::int32_t> pcol_l_counts;
  std::vector<std::int32_t> prow_u_counts;

  trees::CommTree diag_bcast;      ///< root: diag owner, rows prows_l
  trees::CommTree diag_row_bcast;  ///< root: diag owner, columns pcols_u
  trees::CommTree col_reduce;      ///< root: diag owner, rows prows_u

  /// All four aligned with U(K); root-only placeholders on the absent side.
  std::vector<trees::CommTree> col_bcast;
  std::vector<trees::CommTree> row_reduce;
  std::vector<trees::CommTree> row_bcast;
  std::vector<trees::CommTree> col_reduce_up;
  std::vector<int> cross_dst;  ///< owner(K, B) per union entry
  std::vector<int> cross_src;  ///< owner(B, K) per union entry
};

class NsymPlan {
 public:
  /// Builds the full plan; `blocks` (the union structure) and `structure`
  /// must outlive the plan.
  NsymPlan(const BlockStructure& blocks, const NsymStructure& structure,
           const dist::ProcessGrid& grid,
           const trees::TreeOptions& tree_options);

  const BlockStructure& blocks() const { return *blocks_; }
  const NsymStructure& structure() const { return *structure_; }
  const dist::ProcessGrid& grid() const { return grid_; }
  const dist::BlockCyclicMap& map() const { return map_; }
  const trees::TreeOptions& tree_options() const { return tree_options_; }

  const NsymSupernodePlan& supernode(Int k) const {
    return sup_[static_cast<std::size_t>(k)];
  }
  Int supernode_count() const { return static_cast<Int>(sup_.size()); }

  Count block_bytes(Int i, Int k) const;

  // --- dense local-state indexing (union set; see pselinv::Plan) ----------
  std::int64_t kt_id(Int k, Int t) const {
    return kt_offset_[static_cast<std::size_t>(k)] + t;
  }
  std::int64_t kt_count() const { return kt_offset_.back(); }
  std::int32_t row_ordinal(std::int64_t kt) const {
    return ord_row_[static_cast<std::size_t>(kt)];
  }
  std::int32_t col_ordinal(std::int64_t kt) const {
    return ord_col_[static_cast<std::size_t>(kt)];
  }

  /// Position of union entry `kt` within lstruct(K) / ustruct(K), or -1
  /// when the block is absent from that side.
  std::int32_t lpos(std::int64_t kt) const {
    return lpos_[static_cast<std::size_t>(kt)];
  }
  std::int32_t upos(std::int64_t kt) const {
    return upos_[static_cast<std::size_t>(kt)];
  }
  /// Ordinal of a *lstruct* entry among same-grid-column lstruct entries of
  /// its supernode (-1 for non-lstruct entries); indexes RowReduce ready
  /// tables.
  std::int32_t lcol_ordinal(std::int64_t kt) const {
    return ord_lcol_[static_cast<std::size_t>(kt)];
  }
  /// Ordinal of a *ustruct* entry among same-grid-row ustruct entries of
  /// its supernode (-1 otherwise); indexes ColReduceUp / diagonal-term
  /// ready tables.
  std::int32_t urow_ordinal(std::int64_t kt) const {
    return ord_urow_[static_cast<std::size_t>(kt)];
  }

  /// Global dense block ids over the union pattern: diagonals, then lower,
  /// then upper blocks (both triangles of every union entry exist in the
  /// selected inverse).
  std::int64_t block_id_count() const {
    return supernode_count() + 2 * kt_count();
  }
  std::int64_t diag_block_id(Int k) const { return k; }
  std::int64_t lower_block_id(Int k, Int t) const {
    return supernode_count() + kt_id(k, t);
  }
  std::int64_t upper_block_id(Int k, Int t) const {
    return supernode_count() + kt_count() + kt_id(k, t);
  }
  std::int64_t block_id(Int row, Int col) const;

  /// Distinct-communicator audit over every (non-placeholder) collective.
  Count distinct_communicators() const;
  /// Messages a flat scheme would need (row + column sides).
  Count total_collectives() const;
  std::size_t memory_bytes() const;

 private:
  const BlockStructure* blocks_;
  const NsymStructure* structure_;
  dist::ProcessGrid grid_;
  dist::BlockCyclicMap map_;
  trees::TreeOptions tree_options_;
  std::vector<NsymSupernodePlan> sup_;
  std::vector<std::int64_t> kt_offset_;
  std::vector<std::int32_t> ord_row_;
  std::vector<std::int32_t> ord_col_;
  std::vector<std::int32_t> lpos_;
  std::vector<std::int32_t> upos_;
  std::vector<std::int32_t> ord_lcol_;
  std::vector<std::int32_t> ord_urow_;
};

}  // namespace psi::nsym
