#include "nsym/volume.hpp"

#include <cmath>

namespace psi::nsym {

namespace {

/// Total bytes a broadcast or reduction moves over a tree: every non-root
/// participant receives (bcast) or sends (reduce) the payload exactly once.
Count tree_total(const trees::CommTree& tree, Count bytes) {
  if (tree.participant_count() <= 1) return 0;
  return bytes * static_cast<Count>(tree.participant_count() - 1);
}

}  // namespace

Count NsymVolumeReport::total_col_side() const {
  Count total = 0;
  for (const Count b : col_side_bytes) total += b;
  return total;
}

Count NsymVolumeReport::total_row_side() const {
  Count total = 0;
  for (const Count b : row_side_bytes) total += b;
  return total;
}

std::vector<double> NsymVolumeReport::side_imbalance() const {
  std::vector<double> out(col_side_bytes.size(), 0.0);
  for (std::size_t k = 0; k < out.size(); ++k) {
    const double row = static_cast<double>(row_side_bytes[k]);
    const double col = static_cast<double>(col_side_bytes[k]);
    if (row + col > 0.0) out[k] = std::abs(row - col) / (row + col);
  }
  return out;
}

SampleStats NsymVolumeReport::summarize(const std::vector<double>& values) {
  return SampleStats(values);
}

NsymVolumeReport analyze_nsym_volume(const NsymPlan& plan) {
  using pselinv::kColBcast;
  using pselinv::kColReduce;
  using pselinv::kColReduceUp;
  using pselinv::kCrossSend;
  using pselinv::kCrossSendU;
  using pselinv::kDiagBcast;
  using pselinv::kDiagRowBcast;
  using pselinv::kRowBcast;
  using pselinv::kRowReduce;

  NsymVolumeReport report;
  report.per_class.assign(kCommClassCount,
                          trees::VolumeAccumulator(plan.grid().size()));
  const Int nsup = plan.supernode_count();
  report.col_side_bytes.assign(static_cast<std::size_t>(nsup), 0);
  report.row_side_bytes.assign(static_cast<std::size_t>(nsup), 0);
  report.cross_bytes.assign(static_cast<std::size_t>(nsup), 0);

  const BlockStructure& bs = plan.blocks();
  for (Int k = 0; k < nsup; ++k) {
    const NsymSupernodePlan& sp = plan.supernode(k);
    const auto& uni = bs.struct_of[static_cast<std::size_t>(k)];
    const Count diag_bytes = plan.block_bytes(k, k);
    Count& col_side = report.col_side_bytes[static_cast<std::size_t>(k)];
    Count& row_side = report.row_side_bytes[static_cast<std::size_t>(k)];
    Count& cross = report.cross_bytes[static_cast<std::size_t>(k)];

    report.per_class[kDiagBcast].add_bcast(sp.diag_bcast, diag_bytes);
    col_side += tree_total(sp.diag_bcast, diag_bytes);
    report.per_class[kDiagRowBcast].add_bcast(sp.diag_row_bcast, diag_bytes);
    row_side += tree_total(sp.diag_row_bcast, diag_bytes);
    report.per_class[kColReduce].add_reduce(sp.col_reduce, diag_bytes);
    col_side += tree_total(sp.col_reduce, diag_bytes);

    for (Int t = 0; t < static_cast<Int>(uni.size()); ++t) {
      const Int b = uni[static_cast<std::size_t>(t)];
      const Count bytes = plan.block_bytes(b, k);
      const std::int64_t kt = plan.kt_id(k, t);
      const int src = sp.cross_src[static_cast<std::size_t>(t)];
      const int dst = sp.cross_dst[static_cast<std::size_t>(t)];
      // The engine cross-sends L̂ only for lstruct entries and Û only for
      // ustruct entries.
      if (plan.lpos(kt) >= 0) {
        report.per_class[kCrossSend].add_p2p(src, dst, bytes);
        if (src != dst) cross += bytes;
      }
      if (plan.upos(kt) >= 0) {
        report.per_class[kCrossSendU].add_p2p(dst, src, bytes);
        if (src != dst) cross += bytes;
      }
      report.per_class[kColBcast].add_bcast(
          sp.col_bcast[static_cast<std::size_t>(t)], bytes);
      col_side += tree_total(sp.col_bcast[static_cast<std::size_t>(t)], bytes);
      report.per_class[kRowReduce].add_reduce(
          sp.row_reduce[static_cast<std::size_t>(t)], bytes);
      col_side += tree_total(sp.row_reduce[static_cast<std::size_t>(t)], bytes);
      report.per_class[kRowBcast].add_bcast(
          sp.row_bcast[static_cast<std::size_t>(t)], bytes);
      row_side += tree_total(sp.row_bcast[static_cast<std::size_t>(t)], bytes);
      report.per_class[kColReduceUp].add_reduce(
          sp.col_reduce_up[static_cast<std::size_t>(t)], bytes);
      row_side +=
          tree_total(sp.col_reduce_up[static_cast<std::size_t>(t)], bytes);
    }
  }
  return report;
}

}  // namespace psi::nsym
