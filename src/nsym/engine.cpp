#include "nsym/engine.hpp"

#include <algorithm>
#include <span>
#include <unordered_map>

#include "common/check.hpp"
#include "obs/sink.hpp"
#include "trees/protocol.hpp"
#include "trees/resilient.hpp"

namespace psi::nsym {

namespace {

using pselinv::kColBcast;
using pselinv::kColReduce;
using pselinv::kColReduceUp;
using pselinv::kCrossSend;
using pselinv::kCrossSendU;
using pselinv::kDiagBcast;
using pselinv::kDiagRowBcast;
using pselinv::kProtoAck;
using pselinv::kRowBcast;
using pselinv::kRowReduce;

/// Message kinds (high bits of the tag); values shared with the symmetric
/// engine's vocabulary where the phases coincide.
enum MsgKind : int {
  kMsgDiagBcast = 0,
  kMsgCross = 1,
  kMsgColBcast = 2,
  kMsgRowReduce = 3,
  kMsgColReduce = 4,
  /// Self-send: one L-side GEMM task (k, ti, tj) — local tasks go through
  /// the event queue one at a time so a rank interleaves computation with
  /// message forwarding (the MPI_Test-polling analogue).
  kMsgGemmTask = 6,
  kMsgDiagRowBcast = 7,
  kMsgCrossU = 8,
  kMsgRowBcast = 9,
  kMsgColReduceUp = 10,
  kMsgGemmUTask = 11,
};

std::int64_t make_tag(int kind, Int k, Int t) {
  return (static_cast<std::int64_t>(kind) << 48) |
         (static_cast<std::int64_t>(k) << 24) | static_cast<std::int64_t>(t);
}
std::int64_t make_gemm_tag(int kind, Int k, Int ti, Int tj) {
  return (static_cast<std::int64_t>(kind) << 48) |
         (static_cast<std::int64_t>(k) << 24) |
         (static_cast<std::int64_t>(ti) << 12) | static_cast<std::int64_t>(tj);
}
int tag_kind(std::int64_t tag) { return static_cast<int>(tag >> 48); }
Int tag_supernode(std::int64_t tag) {
  return static_cast<Int>((tag >> 24) & 0xffffff);
}
Int tag_index(std::int64_t tag) { return static_cast<Int>(tag & 0xffffff); }
Int tag_ti(std::int64_t tag) { return static_cast<Int>((tag >> 12) & 0xfff); }
Int tag_tj(std::int64_t tag) { return static_cast<Int>(tag & 0xfff); }

/// Host-side state shared by every simulated rank (single-threaded DES; the
/// distributed semantics are preserved because each entry is only touched by
/// the handlers of the rank that owns it).
struct Shared {
  const NsymPlan* plan = nullptr;
  ExecutionMode mode = ExecutionMode::kTrace;
  const NsymSupernodalLU* factor = nullptr;
  BlockMatrix* sink = nullptr;  // numeric gather target
  obs::Sink* obs = nullptr;     // observability sink (may be null)
  trees::ResilienceConfig res;  // resilient-protocol config

  const BlockStructure& bs() const { return plan->blocks(); }
  const NsymStructure& st() const { return plan->structure(); }
  bool numeric() const { return mode == ExecutionMode::kNumeric; }
  bool resilient() const { return res.enabled; }
};

class NsymRank : public sim::Rank {
 public:
  NsymRank(Shared& shared, int rank)
      : sh_(&shared),
        me_(rank),
        my_prow_(shared.plan->grid().row_of(rank)),
        my_pcol_(shared.plan->grid().col_of(rank)) {
    channel_.configure(shared.res, rank, &channel_stats_);
    build_local_index();
  }

  void on_start(sim::Context& ctx) override {
    const BlockStructure& bs = sh_->bs();
    const NsymStructure& st = sh_->st();
    for (Int k = 0; k < bs.supernode_count(); ++k) {
      const auto& sp = sh_->plan->supernode(k);
      const auto& uni = bs.struct_of[static_cast<std::size_t>(k)];
      const auto& lstr = st.lstruct_of[static_cast<std::size_t>(k)];
      const auto& ustr = st.ustruct_of[static_cast<std::size_t>(k)];

      // Every diagonal owner launches its supernode's broadcasts at t=0;
      // pipelining across supernodes is bounded only by data dependencies.
      if (sh_->plan->map().owner(k, k) == me_) {
        if (sh_->obs != nullptr) diag_slot(k).span_begin = ctx.now();
        if (uni.empty()) {
          finalize_diag(ctx, k, /*acc=*/nullptr);
        } else {
          std::shared_ptr<const DenseMatrix> payload;
          if (sh_->numeric())
            payload =
                std::make_shared<DenseMatrix>(sh_->factor->storage().diag(k));
          diag_slot(k).diag_payload = payload;
          if (!lstr.empty()) {
            channel_.bcast_forward(ctx, sp.diag_bcast,
                                   make_tag(kMsgDiagBcast, k, 0),
                                   sh_->plan->block_bytes(k, k), kDiagBcast,
                                   payload);
            normalize_panel(ctx, k, payload);
          }
          if (!ustr.empty()) {
            channel_.bcast_forward(ctx, sp.diag_row_bcast,
                                   make_tag(kMsgDiagRowBcast, k, 0),
                                   sh_->plan->block_bytes(k, k), kDiagRowBcast,
                                   payload);
            normalize_upanel(ctx, k, payload);
          } else {
            // No diagonal-update terms exist: A^{-1}_{K,K} = U^{-1} L^{-1}.
            finalize_diag(ctx, k, /*acc=*/nullptr);
          }
        }
      }

      // A side with an empty restricted structure contributes no recurrence
      // terms: its result blocks are exact zeros, finalized locally by their
      // owners with no communication.
      if (uni.empty() || (!lstr.empty() && !ustr.empty())) continue;
      const Int wk = bs.part.size(k);
      for (Int t = 0; t < static_cast<Int>(uni.size()); ++t) {
        const Int j = uni[static_cast<std::size_t>(t)];
        const Int wj = bs.part.size(j);
        if (lstr.empty() && sh_->plan->map().owner(j, k) == me_) {
          std::shared_ptr<const DenseMatrix> zero;
          if (sh_->numeric()) zero = std::make_shared<DenseMatrix>(wj, wk);
          finalize_block(ctx, j, k, sh_->plan->lower_block_id(k, t), zero);
          if (sh_->plan->upos(sh_->plan->kt_id(k, t)) >= 0) {
            // The zero lower block still feeds a diagonal-update term
            // Û_{K,J}·0; run it once the Û cross payload is here so the
            // Col-Reduce accounting stays uniform.
            UCrossSlot& cross = ucross_slot(k, t);
            if (cross.seen) {
              diag_term_ready(ctx, k, t);
            } else {
              cross.deferred_diag = true;
            }
          }
        }
        if (ustr.empty() && sh_->plan->map().owner(k, j) == me_) {
          std::shared_ptr<const DenseMatrix> zero;
          if (sh_->numeric()) zero = std::make_shared<DenseMatrix>(wk, wj);
          finalize_block(ctx, k, j, sh_->plan->upper_block_id(k, t), zero);
        }
      }
    }
  }

  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    // Resilient mode: acks are consumed and duplicates suppressed here, so
    // the protocol logic below sees each logical message exactly once.
    if (!channel_.on_message(ctx, msg)) return;
    const Int k = tag_supernode(msg.tag);
    const Int t = tag_index(msg.tag);
    switch (tag_kind(msg.tag)) {
      case kMsgDiagBcast: {
        channel_.bcast_forward(ctx, sh_->plan->supernode(k).diag_bcast,
                               msg.tag, msg.bytes, kDiagBcast, msg.data);
        normalize_panel(ctx, k, msg.data);
        break;
      }
      case kMsgCross:
        on_cross(ctx, k, t, msg.data);
        break;
      case kMsgColBcast: {
        channel_.bcast_forward(ctx, sh_->plan->supernode(k).col_bcast[
                                   static_cast<std::size_t>(t)],
                               msg.tag, msg.bytes, kColBcast, msg.data);
        consume_ubcast(ctx, k, t, msg.data);
        break;
      }
      case kMsgRowReduce: {
        RowState& rs = row_state(k, t);
        if (rs.reduce.add_child_from(msg.src, msg.data))
          row_reduce_complete(ctx, k, t);
        break;
      }
      case kMsgColReduce: {
        DiagSlot& ds = diag_state(k);
        if (ds.reduce.add_child_from(msg.src, msg.data))
          col_reduce_complete(ctx, k);
        break;
      }
      case kMsgGemmTask:
        do_gemm(ctx, k, tag_ti(msg.tag), tag_tj(msg.tag));
        break;
      case kMsgDiagRowBcast: {
        channel_.bcast_forward(ctx, sh_->plan->supernode(k).diag_row_bcast,
                               msg.tag, msg.bytes, kDiagRowBcast, msg.data);
        normalize_upanel(ctx, k, msg.data);
        break;
      }
      case kMsgCrossU:
        on_cross_u(ctx, k, t, msg.data);
        break;
      case kMsgRowBcast: {
        channel_.bcast_forward(ctx, sh_->plan->supernode(k).row_bcast[
                                   static_cast<std::size_t>(t)],
                               msg.tag, msg.bytes, kRowBcast, msg.data);
        consume_rowbcast(ctx, k, t, msg.data);
        break;
      }
      case kMsgColReduceUp: {
        UpperState& us = upper_state(k, t);
        if (us.reduce.add_child_from(msg.src, msg.data))
          col_reduce_up_complete(ctx, k, t);
        break;
      }
      case kMsgGemmUTask:
        do_gemm_u(ctx, k, tag_ti(msg.tag), tag_tj(msg.tag));
        break;
      default:
        PSI_CHECK_MSG(false, "unknown message kind");
    }
  }

  void on_timer(sim::Context& ctx, std::int64_t tag) override {
    PSI_CHECK_MSG(channel_.on_timer(ctx, tag), "unexpected program timer");
  }

  std::size_t channel_inflight() const { return channel_.inflight(); }
  Count blocks_finalized() const { return blocks_finalized_; }
  const trees::ChannelStats& channel_stats() const { return channel_stats_; }

 private:
  // ----- loop 1: L-panel normalization ------------------------------------
  void normalize_panel(sim::Context& ctx, Int k,
                       const std::shared_ptr<const DenseMatrix>& diag) {
    const BlockStructure& bs = sh_->bs();
    const auto& sp = sh_->plan->supernode(k);
    const auto& uni = bs.struct_of[static_cast<std::size_t>(k)];
    const Int wk = bs.part.size(k);
    if (sh_->plan->map().pcol_of(k) != my_pcol_) return;

    for (Int t = 0; t < static_cast<Int>(uni.size()); ++t) {
      if (sh_->plan->lpos(sh_->plan->kt_id(k, t)) < 0) continue;
      const Int j = uni[static_cast<std::size_t>(t)];
      if (sh_->plan->map().prow_of(j) != my_prow_) continue;
      const Int wj = bs.part.size(j);
      ctx.compute_flops(trsm_flops(wk, wj));  // L̂_{J,K} = L_{J,K} L_KK^{-1}
      std::shared_ptr<const DenseMatrix> payload;
      if (sh_->numeric()) {
        PSI_CHECK(diag != nullptr);
        DenseMatrix lblock = sh_->factor->storage().block(j, k);
        trsm(Side::kRight, UpLo::kLower, Trans::kNo, Diag::kUnit, 1.0, *diag,
             lblock);
        payload = std::make_shared<DenseMatrix>(std::move(lblock));
      }
      channel_.send(ctx, sp.cross_dst[static_cast<std::size_t>(t)],
                    make_tag(kMsgCross, k, t), sh_->plan->block_bytes(j, k),
                    kCrossSend, payload, /*idempotent=*/true);
    }
  }

  /// Loop 1 for the U factor: normalize this rank's U-panel blocks of
  /// supernode K and cross-send each Û_{K,I} to the L-side owner (which
  /// roots the Row-Bcast and needs Û for the diagonal update).
  void normalize_upanel(sim::Context& ctx, Int k,
                        const std::shared_ptr<const DenseMatrix>& diag) {
    const BlockStructure& bs = sh_->bs();
    const auto& sp = sh_->plan->supernode(k);
    const auto& uni = bs.struct_of[static_cast<std::size_t>(k)];
    const Int wk = bs.part.size(k);
    if (sh_->plan->map().prow_of(k) != my_prow_) return;

    for (Int t = 0; t < static_cast<Int>(uni.size()); ++t) {
      if (sh_->plan->upos(sh_->plan->kt_id(k, t)) < 0) continue;
      const Int i = uni[static_cast<std::size_t>(t)];
      if (sh_->plan->map().pcol_of(i) != my_pcol_) continue;
      ctx.compute_flops(trsm_flops(wk, bs.part.size(i)));  // Û = U_KK^{-1} U
      std::shared_ptr<const DenseMatrix> uhat;
      if (sh_->numeric()) {
        PSI_CHECK(diag != nullptr);
        DenseMatrix ublock = sh_->factor->storage().block(k, i);
        trsm(Side::kLeft, UpLo::kUpper, Trans::kNo, Diag::kNonUnit, 1.0, *diag,
             ublock);
        uhat = std::make_shared<DenseMatrix>(std::move(ublock));
      }
      channel_.send(ctx, sp.cross_src[static_cast<std::size_t>(t)],
                    make_tag(kMsgCrossU, k, t), sh_->plan->block_bytes(i, k),
                    kCrossSendU, uhat, /*idempotent=*/true);
    }
  }

  /// Û_{K,I} arrived at the L-side owner (pr(I),pc(K)): root the Row-Bcast
  /// along processor row pr(I), keep the payload for the diagonal term, and
  /// drain a diagonal term that was waiting for it.
  void on_cross_u(sim::Context& ctx, Int k, Int t,
                  const std::shared_ptr<const DenseMatrix>& uhat) {
    const auto& sp = sh_->plan->supernode(k);
    const Int i = sh_->bs().struct_of[static_cast<std::size_t>(k)]
                                     [static_cast<std::size_t>(t)];
    UCrossSlot& cross = ucross_slot(k, t);
    cross.seen = true;
    if (sh_->numeric()) cross.payload = uhat;
    channel_.bcast_forward(ctx, sp.row_bcast[static_cast<std::size_t>(t)],
                           make_tag(kMsgRowBcast, k, t),
                           sh_->plan->block_bytes(i, k), kRowBcast, uhat);
    consume_rowbcast(ctx, k, t, uhat);
    UCrossSlot& after = ucross_slot(k, t);
    if (after.deferred_diag) {
      after.deferred_diag = false;
      diag_term_ready(ctx, k, t);
    }
  }

  /// Local consumption of a Row-Bcast Û_{K,I}: one GEMM per target block
  /// column J in U(K) that this rank owns in processor row pr(I).
  void consume_rowbcast(sim::Context& ctx, Int k, Int t,
                        const std::shared_ptr<const DenseMatrix>& uhat) {
    const BlockStructure& bs = sh_->bs();
    const auto& uni = bs.struct_of[static_cast<std::size_t>(k)];
    const Int i = uni[static_cast<std::size_t>(t)];

    int targets = 0;
    for (Int tj = 0; tj < static_cast<Int>(uni.size()); ++tj)
      if (sh_->plan->map().pcol_of(uni[static_cast<std::size_t>(tj)]) == my_pcol_)
        ++targets;
    if (targets == 0) return;  // pure forwarder

    UCache& cache = a_ucache_row_[a_slot(k, t)];
    cache.payload = uhat;
    cache.remaining = targets;

    for (Int tj = 0; tj < static_cast<Int>(uni.size()); ++tj) {
      const Int j = uni[static_cast<std::size_t>(tj)];
      if (sh_->plan->map().pcol_of(j) != my_pcol_) continue;
      // The GEMM needs A^{-1}_{I,J} (which this rank owns) to be final.
      const std::int64_t dep = sh_->plan->block_id(i, j);
      if (is_final(dep)) {
        gemm_ready(ctx, k, t, tj, /*upper=*/true);
      } else {
        waiting_[dep].push_back(Pending{k, t, tj, /*upper=*/true});
      }
    }
  }

  /// contribution(K, J) -= Û_{K,I} A^{-1}_{I,J} (upper target, I ∈ ustruct).
  void do_gemm_u(sim::Context& ctx, Int k, Int ti, Int tj) {
    const BlockStructure& bs = sh_->bs();
    const auto& uni = bs.struct_of[static_cast<std::size_t>(k)];
    const Int i = uni[static_cast<std::size_t>(ti)];
    const Int j = uni[static_cast<std::size_t>(tj)];
    const Int wk = bs.part.size(k), wi = bs.part.size(i), wj = bs.part.size(j);
    ctx.compute_flops(gemm_flops(wk, wj, wi));

    UpperState& us = upper_state(k, tj);
    UCache& cache = a_ucache_row_[a_slot(k, ti)];
    if (sh_->numeric()) {
      if (!us.acc) us.acc = std::make_shared<DenseMatrix>(wk, wj);
      const auto it = values_.find(sh_->plan->block_id(i, j));
      PSI_ASSERT(it != values_.end() && it->second != nullptr);
      PSI_CHECK(cache.payload != nullptr);
      gemm(Trans::kNo, Trans::kNo, -1.0, *cache.payload, *it->second, 1.0,
           *us.acc);
    }
    if (--cache.remaining == 0) cache.payload.reset();

    PSI_ASSERT(us.remaining_gemms > 0);
    if (--us.remaining_gemms == 0) {
      const bool done = us.reduce.add_local(std::move(us.acc));
      if (done) col_reduce_up_complete(ctx, k, tj);
    }
  }

  /// Col-Reduce-Up completion: the root owns the upper block A^{-1}_{K,J}.
  void col_reduce_up_complete(sim::Context& ctx, Int k, Int tj) {
    const BlockStructure& bs = sh_->bs();
    const auto& sp = sh_->plan->supernode(k);
    const trees::CommTree& tree = sp.col_reduce_up[static_cast<std::size_t>(tj)];
    UpperState& us = upper_state(k, tj);
    const Int j = bs.struct_of[static_cast<std::size_t>(k)]
                              [static_cast<std::size_t>(tj)];
    auto value = us.reduce.accumulated();
    if (me_ != tree.root()) {
      channel_.send(ctx, tree.parent_of(me_), make_tag(kMsgColReduceUp, k, tj),
                    sh_->plan->block_bytes(j, k), kColReduceUp, value,
                    /*idempotent=*/false);
      us = UpperState();  // collective done on this rank; release memory
      return;
    }
    finalize_block(ctx, k, j, sh_->plan->upper_block_id(k, tj), value);
    upper_state(k, tj) = UpperState();
  }

  // ----- loop 2: L-side broadcast + GEMMs ---------------------------------
  void on_cross(sim::Context& ctx, Int k, Int t,
                const std::shared_ptr<const DenseMatrix>& lhat) {
    // I am owner(K, I): root of the Col-Bcast of L̂_{I,K}.
    const auto& sp = sh_->plan->supernode(k);
    const Int i = sh_->bs().struct_of[static_cast<std::size_t>(k)]
                                     [static_cast<std::size_t>(t)];
    channel_.bcast_forward(ctx, sp.col_bcast[static_cast<std::size_t>(t)],
                           make_tag(kMsgColBcast, k, t),
                           sh_->plan->block_bytes(i, k), kColBcast, lhat);
    consume_ubcast(ctx, k, t, lhat);
  }

  /// Local consumption of a Col-Bcast L̂_{I,K}: one GEMM per target block
  /// row J in U(K) that this rank owns in processor column pc(I).
  void consume_ubcast(sim::Context& ctx, Int k, Int t,
                      const std::shared_ptr<const DenseMatrix>& lhat) {
    const BlockStructure& bs = sh_->bs();
    const auto& uni = bs.struct_of[static_cast<std::size_t>(k)];
    const Int i = uni[static_cast<std::size_t>(t)];

    int targets = 0;
    for (Int tj = 0; tj < static_cast<Int>(uni.size()); ++tj)
      if (sh_->plan->map().prow_of(uni[static_cast<std::size_t>(tj)]) == my_prow_)
        ++targets;
    if (targets == 0) return;  // pure forwarder

    UCache& cache = b_ucache_[b_slot(k, t)];
    cache.payload = lhat;
    cache.remaining = targets;

    PSI_CHECK_MSG(static_cast<Int>(uni.size()) <= 0xfff,
                  "supernode structure too large for the GEMM task tag");
    for (Int tj = 0; tj < static_cast<Int>(uni.size()); ++tj) {
      const Int j = uni[static_cast<std::size_t>(tj)];
      if (sh_->plan->map().prow_of(j) != my_prow_) continue;
      // The GEMM needs A^{-1}_{J,I} (which this rank owns) to be final.
      const std::int64_t dep = sh_->plan->block_id(j, i);
      if (is_final(dep)) {
        gemm_ready(ctx, k, t, tj, /*upper=*/false);
      } else {
        waiting_[dep].push_back(Pending{k, t, tj, /*upper=*/false});
      }
    }
  }

  /// All inputs of GEMM (k, ti, tj) are available. Historical mode: enqueue
  /// it immediately (arrival-order accumulation). Resilient mode: park it in
  /// the target reduction state's ready table — indexed by the *restricted*
  /// ordinal, since only lstruct (ustruct) entries produce L-side (U-side)
  /// GEMMs — and enqueue the contiguous ordinal prefix, so contributions
  /// fold canonically regardless of message timing.
  void gemm_ready(sim::Context& ctx, Int k, Int ti, Int tj, bool upper) {
    if (!sh_->resilient()) {
      ctx.send(me_,
               make_gemm_tag(upper ? kMsgGemmUTask : kMsgGemmTask, k, ti, tj),
               0, upper ? kRowBcast : kColBcast);
      return;
    }
    const NsymPlan& plan = *sh_->plan;
    if (upper) {
      UpperState& us = upper_state(k, tj);
      us.ready[static_cast<std::size_t>(
          plan.urow_ordinal(plan.kt_id(k, ti)))] = ti + 1;
      while (us.cursor < static_cast<Int>(us.ready.size()) &&
             us.ready[static_cast<std::size_t>(us.cursor)] != 0) {
        const Int next = us.ready[static_cast<std::size_t>(us.cursor)] - 1;
        ++us.cursor;
        ctx.send(me_, make_gemm_tag(kMsgGemmUTask, k, next, tj), 0, kRowBcast);
      }
    } else {
      RowState& rs = row_state(k, tj);
      rs.ready[static_cast<std::size_t>(
          plan.lcol_ordinal(plan.kt_id(k, ti)))] = ti + 1;
      while (rs.cursor < static_cast<Int>(rs.ready.size()) &&
             rs.ready[static_cast<std::size_t>(rs.cursor)] != 0) {
        const Int next = rs.ready[static_cast<std::size_t>(rs.cursor)] - 1;
        ++rs.cursor;
        ctx.send(me_, make_gemm_tag(kMsgGemmTask, k, next, tj), 0, kColBcast);
      }
    }
  }

  /// A diagonal-update term (k, tj), tj ∈ ustruct(K), became runnable.
  /// Resilient mode folds the terms in restricted-ordinal order.
  void diag_term_ready(sim::Context& ctx, Int k, Int tj) {
    if (!sh_->resilient()) {
      add_diag_contribution(ctx, k, tj);
      return;
    }
    const NsymPlan& plan = *sh_->plan;
    DiagSlot& ds = diag_state(k);
    ds.term_ready[static_cast<std::size_t>(
        plan.urow_ordinal(plan.kt_id(k, tj)))] = tj + 1;
    while (ds.term_cursor < static_cast<Int>(ds.term_ready.size()) &&
           ds.term_ready[static_cast<std::size_t>(ds.term_cursor)] != 0) {
      const Int next =
          ds.term_ready[static_cast<std::size_t>(ds.term_cursor)] - 1;
      ++ds.term_cursor;
      add_diag_contribution(ctx, k, next);
    }
  }

  /// contribution(K, J) -= A^{-1}_{J,I} L̂_{I,K} (lower target, I ∈ lstruct).
  void do_gemm(sim::Context& ctx, Int k, Int ti, Int tj) {
    const BlockStructure& bs = sh_->bs();
    const auto& uni = bs.struct_of[static_cast<std::size_t>(k)];
    const Int i = uni[static_cast<std::size_t>(ti)];
    const Int j = uni[static_cast<std::size_t>(tj)];
    const Int wk = bs.part.size(k), wi = bs.part.size(i), wj = bs.part.size(j);
    ctx.compute_flops(gemm_flops(wj, wk, wi));

    RowState& rs = row_state(k, tj);
    UCache& cache = b_ucache_[b_slot(k, ti)];
    if (sh_->numeric()) {
      if (!rs.acc) rs.acc = std::make_shared<DenseMatrix>(wj, wk);
      const auto it = values_.find(sh_->plan->block_id(j, i));
      PSI_ASSERT(it != values_.end() && it->second != nullptr);
      PSI_CHECK(cache.payload != nullptr);
      gemm(Trans::kNo, Trans::kNo, -1.0, *it->second, *cache.payload, 1.0,
           *rs.acc);
    }
    // Release the broadcast payload once all local GEMMs consumed it.
    if (--cache.remaining == 0) cache.payload.reset();

    PSI_ASSERT(rs.remaining_gemms > 0);
    if (--rs.remaining_gemms == 0) {
      // Move the accumulator out first: row_reduce_complete() resets the
      // state this reference points into.
      const bool done = rs.reduce.add_local(std::move(rs.acc));
      if (done) row_reduce_complete(ctx, k, tj);
    }
  }

  // ----- Row-Reduce completion --------------------------------------------
  void row_reduce_complete(sim::Context& ctx, Int k, Int tj) {
    const BlockStructure& bs = sh_->bs();
    const auto& sp = sh_->plan->supernode(k);
    const trees::CommTree& tree = sp.row_reduce[static_cast<std::size_t>(tj)];
    RowState& rs = row_state(k, tj);
    const Int j = bs.struct_of[static_cast<std::size_t>(k)]
                              [static_cast<std::size_t>(tj)];
    auto value = rs.reduce.accumulated();
    if (me_ != tree.root()) {
      channel_.send(ctx, tree.parent_of(me_), make_tag(kMsgRowReduce, k, tj),
                    sh_->plan->block_bytes(j, k), kRowReduce, value,
                    /*idempotent=*/false);
      rs = RowState();  // collective done on this rank; release memory
      return;
    }
    // Root: A^{-1}_{J,K} is complete.
    std::shared_ptr<const DenseMatrix> final_value = value;
    finalize_block(ctx, j, k, sh_->plan->lower_block_id(k, tj), final_value);
    // Diagonal contribution Û_{K,J} A^{-1}_{J,K} exists only for J in
    // ustruct(K); it needs the Û cross payload.
    if (sh_->plan->upos(sh_->plan->kt_id(k, tj)) >= 0) {
      UCrossSlot& cross = ucross_slot(k, tj);
      if (cross.seen) {
        diag_term_ready(ctx, k, tj);
      } else {
        cross.deferred_diag = true;
      }
    }
    row_state(k, tj) = RowState();
  }

  void add_diag_contribution(sim::Context& ctx, Int k, Int tj) {
    const BlockStructure& bs = sh_->bs();
    const Int j = bs.struct_of[static_cast<std::size_t>(k)]
                              [static_cast<std::size_t>(tj)];
    const Int wk = bs.part.size(k), wj = bs.part.size(j);
    ctx.compute_flops(gemm_flops(wk, wk, wj));
    DiagSlot& ds = diag_state(k);
    if (sh_->numeric()) {
      if (!ds.acc) ds.acc = std::make_shared<DenseMatrix>(wk, wk);
      const auto it = values_.find(sh_->plan->lower_block_id(k, tj));
      PSI_ASSERT(it != values_.end());
      const auto& uhat = ucross_slot(k, tj).payload;
      PSI_CHECK(uhat != nullptr);
      gemm(Trans::kNo, Trans::kNo, 1.0, *uhat, *it->second, 1.0, *ds.acc);
    }
    PSI_ASSERT(ds.remaining_terms > 0);
    if (--ds.remaining_terms == 0) {
      // Move out before col_reduce_complete(), which resets the state.
      const bool done = ds.reduce.add_local(std::move(ds.acc));
      if (done) col_reduce_complete(ctx, k);
    }
  }

  // ----- Col-Reduce completion / diagonal ---------------------------------
  void col_reduce_complete(sim::Context& ctx, Int k) {
    const auto& sp = sh_->plan->supernode(k);
    DiagSlot& ds = diag_state(k);
    auto value = ds.reduce.accumulated();
    if (me_ != sp.col_reduce.root()) {
      channel_.send(ctx, sp.col_reduce.parent_of(me_),
                    make_tag(kMsgColReduce, k, 0),
                    sh_->plan->block_bytes(k, k), kColReduce, value,
                    /*idempotent=*/false);
      ds.release();
      return;
    }
    finalize_diag(ctx, k, value);
    diag_slot(k).release();
  }

  /// A^{-1}_{K,K} = U_KK^{-1} L_KK^{-1} - accumulated.
  void finalize_diag(sim::Context& ctx, Int k,
                     const std::shared_ptr<DenseMatrix>& acc) {
    const Int wk = sh_->bs().part.size(k);
    ctx.compute_flops(2 * trsm_flops(wk, wk));
    std::shared_ptr<const DenseMatrix> result;
    if (sh_->numeric()) {
      const DenseMatrix& packed = sh_->factor->storage().diag(k);
      auto inv = std::make_shared<DenseMatrix>(wk, wk);
      for (Int d = 0; d < wk; ++d) (*inv)(d, d) = 1.0;
      trsm(Side::kLeft, UpLo::kLower, Trans::kNo, Diag::kUnit, 1.0, packed,
           *inv);
      trsm(Side::kLeft, UpLo::kUpper, Trans::kNo, Diag::kNonUnit, 1.0, packed,
           *inv);
      if (acc) {
        PSI_CHECK(acc->rows() == wk && acc->cols() == wk);
        for (Int c = 0; c < wk; ++c)
          for (Int r = 0; r < wk; ++r) (*inv)(r, c) -= (*acc)(r, c);
      }
      result = inv;
    }
    finalize_block(ctx, k, k, sh_->plan->diag_block_id(k), result);
    DiagSlot& ds = diag_slot(k);
    ds.diag_payload.reset();
    if (sh_->obs != nullptr) {
      ctx.span("supernode", k, ds.span_begin, ctx.now());
      ctx.mark("diag-final", k, ctx.now());
    }
  }

  // ----- block finalization & dependency flushing -------------------------
  void finalize_block(sim::Context& ctx, Int row, Int col, std::int64_t id,
                      const std::shared_ptr<const DenseMatrix>& value) {
    PSI_ASSERT(!is_final(id));
    set_final(id);
    ++blocks_finalized_;
    if (sh_->numeric()) {
      PSI_CHECK(value != nullptr);
      values_[id] = value;
      sh_->sink->set_block(row, col, *value);
    }
    auto it = waiting_.find(id);
    if (it != waiting_.end()) {
      const std::vector<Pending> pending = std::move(it->second);
      waiting_.erase(it);
      for (const Pending& p : pending) gemm_ready(ctx, p.k, p.ti, p.tj, p.upper);
    }
  }

  // ----- dense per-collective state ---------------------------------------
  struct UCache {
    std::shared_ptr<const DenseMatrix> payload;
    int remaining = 0;
  };
  struct RowState {
    trees::ReduceState reduce;
    std::shared_ptr<DenseMatrix> acc;
    int remaining_gemms = 0;
    bool initialized = false;
    // Resilient mode: ready[lcol_ordinal(ti)] = ti + 1 once GEMM (k, ti, tj)
    // is runnable; the cursor enqueues the contiguous prefix in order.
    std::vector<Int> ready;
    Int cursor = 0;
  };
  struct DiagSlot {
    trees::ReduceState reduce;
    std::shared_ptr<DenseMatrix> acc;
    std::shared_ptr<const DenseMatrix> diag_payload;  ///< owner only (numeric)
    std::vector<Int> term_ready;  ///< resilient mode; keyed by urow_ordinal
    Int term_cursor = 0;
    int remaining_terms = 0;
    bool initialized = false;
    sim::SimTime span_begin = 0.0;  ///< broadcast launch (obs span, owner)

    void release() {
      reduce = trees::ReduceState();
      acc.reset();
    }
  };
  struct Pending {
    Int k, ti, tj;
    bool upper;  ///< true: U-side GEMM
  };
  struct UpperState {
    trees::ReduceState reduce;
    std::shared_ptr<DenseMatrix> acc;
    int remaining_gemms = 0;
    bool initialized = false;
    std::vector<Int> ready;  ///< resilient mode; keyed by urow_ordinal(ti)
    Int cursor = 0;
  };
  struct UCrossSlot {
    std::shared_ptr<const DenseMatrix> payload;
    bool seen = false;
    bool deferred_diag = false;
  };

  /// Builds the per-rank dense slot bases from the plan's per-supernode
  /// union counts (identical layout to the symmetric engine; the restricted
  /// sides index into union slots via lpos/upos ordinals).
  void build_local_index() {
    const NsymPlan& plan = *sh_->plan;
    const Int nsup = plan.supernode_count();
    base_a_.resize(static_cast<std::size_t>(nsup));
    base_b_.resize(static_cast<std::size_t>(nsup));
    base_d_.resize(static_cast<std::size_t>(nsup));
    std::int32_t na = 0, nb = 0, nd = 0;
    for (Int k = 0; k < nsup; ++k) {
      const NsymSupernodePlan& sp = plan.supernode(k);
      base_a_[static_cast<std::size_t>(k)] = na;
      base_b_[static_cast<std::size_t>(k)] = nb;
      base_d_[static_cast<std::size_t>(k)] = nd;
      if (std::binary_search(sp.pcols_a.begin(), sp.pcols_a.end(), my_pcol_)) {
        const auto it =
            std::lower_bound(sp.prows.begin(), sp.prows.end(), my_prow_);
        if (it != sp.prows.end() && *it == my_prow_)
          na += sp.prow_counts[static_cast<std::size_t>(it - sp.prows.begin())];
      }
      if (std::binary_search(sp.prows_b.begin(), sp.prows_b.end(), my_prow_)) {
        const auto it =
            std::lower_bound(sp.pcols.begin(), sp.pcols.end(), my_pcol_);
        if (it != sp.pcols.end() && *it == my_pcol_)
          nb += sp.pcol_counts[static_cast<std::size_t>(it - sp.pcols.begin())];
        if (plan.map().pcol_of(k) == my_pcol_) nd += 1;
      }
    }
    a_row_.resize(static_cast<std::size_t>(na));
    a_ucache_row_.resize(static_cast<std::size_t>(na));
    a_ucross_.resize(static_cast<std::size_t>(na));
    b_ucache_.resize(static_cast<std::size_t>(nb));
    b_upper_.resize(static_cast<std::size_t>(nb));
    d_diag_.resize(static_cast<std::size_t>(nd));
    final_bits_.assign(
        static_cast<std::size_t>((plan.block_id_count() + 63) / 64), 0);
  }

  std::size_t a_slot(Int k, Int t) const {
    return static_cast<std::size_t>(
        base_a_[static_cast<std::size_t>(k)] +
        sh_->plan->row_ordinal(sh_->plan->kt_id(k, t)));
  }
  std::size_t b_slot(Int k, Int t) const {
    return static_cast<std::size_t>(
        base_b_[static_cast<std::size_t>(k)] +
        sh_->plan->col_ordinal(sh_->plan->kt_id(k, t)));
  }
  std::size_t d_slot(Int k) const {
    return static_cast<std::size_t>(base_d_[static_cast<std::size_t>(k)]);
  }

  bool is_final(std::int64_t id) const {
    return (final_bits_[static_cast<std::size_t>(id >> 6)] >> (id & 63)) & 1u;
  }
  void set_final(std::int64_t id) {
    final_bits_[static_cast<std::size_t>(id >> 6)] |= 1ull << (id & 63);
  }

  DiagSlot& diag_slot(Int k) { return d_diag_[d_slot(k)]; }
  UCrossSlot& ucross_slot(Int k, Int t) { return a_ucross_[a_slot(k, t)]; }

  RowState& row_state(Int k, Int tj) {
    RowState& rs = a_row_[a_slot(k, tj)];
    if (!rs.initialized) {
      rs.initialized = true;
      const NsymStructure& st = sh_->st();
      const trees::CommTree& tree =
          sh_->plan->supernode(k).row_reduce[static_cast<std::size_t>(tj)];
      const std::span<const int> children =
          tree.participates(me_) ? tree.children_of(me_)
                                 : std::span<const int>{};
      rs.reduce = sh_->resilient()
                      ? trees::ReduceState(children)
                      : trees::ReduceState(static_cast<int>(children.size()));
      for (Int i : st.lstruct_of[static_cast<std::size_t>(k)])
        if (sh_->plan->map().pcol_of(i) == my_pcol_) ++rs.remaining_gemms;
      if (sh_->resilient())
        rs.ready.assign(static_cast<std::size_t>(rs.remaining_gemms), 0);
      // A root outside the contributor columns has no local GEMMs: publish
      // an empty local contribution right away.
      if (rs.remaining_gemms == 0) rs.reduce.add_local(nullptr);
      // (completion cannot trigger here: the tree then has >= 1 child.)
    }
    return rs;
  }

  UpperState& upper_state(Int k, Int tj) {
    UpperState& us = b_upper_[b_slot(k, tj)];
    if (!us.initialized) {
      us.initialized = true;
      const NsymStructure& st = sh_->st();
      const trees::CommTree& tree =
          sh_->plan->supernode(k).col_reduce_up[static_cast<std::size_t>(tj)];
      const std::span<const int> children =
          tree.participates(me_) ? tree.children_of(me_)
                                 : std::span<const int>{};
      us.reduce = sh_->resilient()
                      ? trees::ReduceState(children)
                      : trees::ReduceState(static_cast<int>(children.size()));
      for (Int i : st.ustruct_of[static_cast<std::size_t>(k)])
        if (sh_->plan->map().prow_of(i) == my_prow_) ++us.remaining_gemms;
      if (sh_->resilient())
        us.ready.assign(static_cast<std::size_t>(us.remaining_gemms), 0);
      if (us.remaining_gemms == 0) us.reduce.add_local(nullptr);
    }
    return us;
  }

  DiagSlot& diag_state(Int k) {
    DiagSlot& ds = diag_slot(k);
    if (!ds.initialized) {
      ds.initialized = true;
      const NsymStructure& st = sh_->st();
      const trees::CommTree& tree = sh_->plan->supernode(k).col_reduce;
      const std::span<const int> children =
          tree.participates(me_) ? tree.children_of(me_)
                                 : std::span<const int>{};
      ds.reduce = sh_->resilient()
                      ? trees::ReduceState(children)
                      : trees::ReduceState(static_cast<int>(children.size()));
      for (Int j : st.ustruct_of[static_cast<std::size_t>(k)])
        if (sh_->plan->map().prow_of(j) == my_prow_) ++ds.remaining_terms;
      if (sh_->resilient())
        ds.term_ready.assign(static_cast<std::size_t>(ds.remaining_terms), 0);
      if (ds.remaining_terms == 0) ds.reduce.add_local(nullptr);
    }
    return ds;
  }

  Shared* sh_;
  int me_;
  int my_prow_;
  int my_pcol_;
  trees::ResilientChannel channel_;
  Count blocks_finalized_ = 0;
  trees::ChannelStats channel_stats_;

  // Dense per-rank state arenas (see build_local_index):
  std::vector<std::int32_t> base_a_;
  std::vector<std::int32_t> base_b_;
  std::vector<std::int32_t> base_d_;
  std::vector<RowState> a_row_;
  std::vector<UCache> a_ucache_row_;
  std::vector<UCrossSlot> a_ucross_;
  std::vector<UCache> b_ucache_;
  std::vector<UpperState> b_upper_;
  std::vector<DiagSlot> d_diag_;

  /// Finalized-block bitmap over the plan's global dense block ids.
  std::vector<std::uint64_t> final_bits_;
  /// Finalized block values (numeric mode only), keyed by global block id.
  std::unordered_map<std::int64_t, std::shared_ptr<const DenseMatrix>> values_;
  /// GEMMs parked on a not-yet-final A^{-1} operand, keyed by global block
  /// id — the one genuinely sparse map left on the message path.
  std::unordered_map<std::int64_t, std::vector<Pending>> waiting_;
};

}  // namespace

RunResult run_nsym(const NsymPlan& plan, const sim::Machine& machine,
                   ExecutionMode mode, const NsymSupernodalLU* factor,
                   std::vector<sim::TraceEvent>* trace_out,
                   obs::Sink* obs_sink, const RunOptions& options) {
  Shared shared;
  shared.plan = &plan;
  shared.mode = mode;
  shared.factor = factor;
  shared.obs = obs_sink;
  shared.res = options.resilience;
  shared.res.ack_comm_class = kProtoAck;

  std::unique_ptr<BlockMatrix> sink;
  if (mode == ExecutionMode::kNumeric) {
    PSI_CHECK_MSG(factor != nullptr,
                  "numeric mode requires the sequential factorization");
    PSI_CHECK_MSG(!factor->normalized(),
                  "pass the unnormalized factor; the engine runs loop 1 itself");
    sink = std::make_unique<BlockMatrix>(plan.blocks());
    shared.sink = sink.get();
  }

  sim::Engine engine(machine, plan.grid().size(), kCommClassCount);
  if (trace_out != nullptr) engine.enable_trace();
  if (obs_sink != nullptr) engine.set_sink(obs_sink);
  if (options.injector != nullptr) engine.set_fault_injector(options.injector);
  if (options.perturbation != nullptr)
    engine.set_perturbation(options.perturbation);
  if (options.schedule != nullptr) engine.set_schedule_policy(options.schedule);
  engine.set_partitions(options.partitions);
  std::vector<const NsymRank*> rank_programs;
  rank_programs.reserve(static_cast<std::size_t>(plan.grid().size()));
  for (int r = 0; r < plan.grid().size(); ++r) {
    auto program = std::make_unique<NsymRank>(shared, r);
    rank_programs.push_back(program.get());
    engine.set_rank(r, std::move(program));
  }
  const sim::SimTime makespan = engine.run();
  if (trace_out != nullptr) *trace_out = engine.trace();

  RunResult result;
  result.makespan = makespan;
  result.events = engine.events_processed();
  result.events_per_second = engine.events_per_second();
  for (const NsymRank* program : rank_programs)
    result.blocks_finalized += program->blocks_finalized();
  result.expected_blocks =
      static_cast<Count>(plan.supernode_count() + 2 * plan.kt_count());
  result.rank_stats.reserve(static_cast<std::size_t>(plan.grid().size()));
  for (int r = 0; r < plan.grid().size(); ++r)
    result.rank_stats.push_back(engine.stats(r));
  result.ainv = std::move(sink);
  for (const NsymRank* program : rank_programs) {
    result.channel_stats.merge(program->channel_stats());
    result.channel_inflight += program->channel_inflight();
  }
  result.leaked_timers = engine.leaked_timers();
  result.arena_high_water = engine.arena_high_water();
  PSI_CHECK_MSG(result.complete(),
                "nsym selected inversion did not finalize every block: "
                    << result.blocks_finalized << " of "
                    << result.expected_blocks);
  return result;
}

}  // namespace psi::nsym
