/// \file block_matrix.hpp
/// \brief Restricted supernodal block storage for the non-symmetric factor.
///
/// Mirrors numeric::BlockMatrix but with *independent* lower and upper
/// structures: for each supernode K,
///  * diag   — the dense width(K) x width(K) diagonal block (packed L\U
///             after factorization),
///  * lpanel — the stacked dense blocks (I, K) for I in lstruct(K),
///  * upanel — the dense blocks (K, I) side by side for I in ustruct(K).
/// On a structurally symmetric input (lstruct == ustruct == struct) the
/// layout coincides with BlockMatrix exactly.
#pragma once

#include "nsym/structure.hpp"
#include "sparse/dense.hpp"

namespace psi::nsym {

class NsymBlockMatrix {
 public:
  /// Allocates zeroed storage shaped by the restricted structure (both kept
  /// by reference; the caller guarantees they outlive the matrix).
  NsymBlockMatrix(const BlockStructure& blocks, const NsymStructure& structure);

  const BlockStructure& blocks() const { return *blocks_; }
  const NsymStructure& structure() const { return *structure_; }
  Int supernode_count() const { return blocks_->supernode_count(); }

  DenseMatrix& diag(Int k) { return cols_[static_cast<std::size_t>(k)].diag; }
  const DenseMatrix& diag(Int k) const { return cols_[static_cast<std::size_t>(k)].diag; }
  DenseMatrix& lpanel(Int k) { return cols_[static_cast<std::size_t>(k)].lpanel; }
  const DenseMatrix& lpanel(Int k) const { return cols_[static_cast<std::size_t>(k)].lpanel; }
  DenseMatrix& upanel(Int k) { return cols_[static_cast<std::size_t>(k)].upanel; }
  const DenseMatrix& upanel(Int k) const { return cols_[static_cast<std::size_t>(k)].upanel; }

  /// Row offset of block (i, k) inside lpanel(k). `i` must be in lstruct(k).
  Int lower_offset(Int k, Int i) const;
  /// Column offset of block (k, i) inside upanel(k). `i` must be in
  /// ustruct(k).
  Int upper_offset(Int k, Int i) const;
  /// Total stacked rows of lpanel(k) / total columns of upanel(k).
  Int lower_rows(Int k) const;
  Int upper_cols(Int k) const;

  /// Copy of the dense block (i, k): i == k -> diagonal, i > k -> from
  /// lpanel(k) (requires i in lstruct(k)), i < k -> from upanel(i)
  /// (requires k in ustruct(i)).
  DenseMatrix block(Int i, Int k) const;
  void set_block(Int i, Int k, const DenseMatrix& value);
  void add_block(Int i, Int k, const DenseMatrix& value, double scale = 1.0);

  /// Loads the values of `a` (the analyzed, permuted *directed* matrix).
  /// Every stored entry lands inside the restricted structure by
  /// construction (the structure is seeded from this matrix).
  void load(const SparseMatrix& a);

  /// Dense expansion (tests; small problems only).
  DenseMatrix to_dense() const;

 private:
  struct BlockColumn {
    DenseMatrix diag;
    DenseMatrix lpanel;
    DenseMatrix upanel;
  };

  Int lpos(Int k, Int i) const;
  Int upos(Int k, Int i) const;

  const BlockStructure* blocks_;
  const NsymStructure* structure_;
  std::vector<BlockColumn> cols_;
  std::vector<std::vector<Int>> loffsets_;  ///< per supernode, per lstruct entry
  std::vector<std::vector<Int>> uoffsets_;  ///< per supernode, per ustruct entry
};

}  // namespace psi::nsym
