/// \file volume.hpp
/// \brief Analytic per-rank and per-supernode communication volumes of an
/// NsymPlan, including the row-side vs column-side load split.
///
/// A structurally non-symmetric plan moves different byte counts through
/// its column-side collectives (DiagBcast / ColBcast / RowReduce /
/// ColReduce, driven by lstruct) and its row-side collectives (DiagRowBcast
/// / RowBcast / ColReduceUp, driven by ustruct). The per-supernode split
/// quantifies how skewed the two sides are — the load-balancing question
/// the paired-tree design answers.
#pragma once

#include <vector>

#include "common/stats.hpp"
#include "nsym/plan.hpp"
#include "trees/volume.hpp"

namespace psi::nsym {

struct NsymVolumeReport {
  /// Per pselinv::CommClass: per-rank bytes sent / received.
  std::vector<trees::VolumeAccumulator> per_class;

  /// Per-supernode total bytes moved by the column-side collectives
  /// (DiagBcast + ColBcast + RowReduce + ColReduce).
  std::vector<Count> col_side_bytes;
  /// Per-supernode total bytes moved by the row-side collectives
  /// (DiagRowBcast + RowBcast + ColReduceUp).
  std::vector<Count> row_side_bytes;
  /// Per-supernode point-to-point cross bytes (both directions, excluding
  /// self-sends).
  std::vector<Count> cross_bytes;

  const trees::VolumeAccumulator& of(int comm_class) const {
    return per_class[static_cast<std::size_t>(comm_class)];
  }

  Count total_col_side() const;
  Count total_row_side() const;

  /// Per-supernode side imbalance |row - col| / (row + col) in [0, 1]
  /// (zero when the supernode moves no bytes on either side). A symmetric
  /// structure with symmetric tree schemes sits near zero; dropped
  /// off-diagonal blocks push individual supernodes toward one.
  std::vector<double> side_imbalance() const;

  /// min/max/median/stddev summary of a per-supernode metric.
  static SampleStats summarize(const std::vector<double>& values);
};

/// Walks every collective of the plan and accumulates exact traffic.
/// Placeholder trees (absent sides) and self cross-sends contribute zero,
/// matching what the engine actually puts on the network.
NsymVolumeReport analyze_nsym_volume(const NsymPlan& plan);

}  // namespace psi::nsym
