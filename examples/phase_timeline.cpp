/// \file phase_timeline.cpp
/// \brief Visualizes WHEN each restricted-collective class is on the wire
/// during a simulated selected inversion — the pipelining/overlap story of
/// the paper's §II-B ("pipelining computations and overlapping communication
/// with computations") made visible.
///
/// Prints an ASCII timeline (rows: communication classes, columns: time
/// buckets, shading: bytes delivered) for the Flat vs the Shifted
/// Binary-Tree runs of the same problem, plus per-class totals.
///
///   ./phase_timeline [buckets]
#include <cstdio>
#include <cstdlib>

#include "driver/experiment.hpp"
#include "driver/timeline.hpp"
#include "pselinv/engine.hpp"
#include "sparse/generators.hpp"

int main(int argc, char** argv) {
  using namespace psi;
  const auto buckets = static_cast<std::size_t>(argc > 1 ? std::atoi(argv[1]) : 64);

  const GeneratedMatrix gen = fem3d(10, 10, 10, 3, 3);
  AnalysisOptions options = driver::default_analysis_options();
  options.supernodes.max_size = 32;
  const SymbolicAnalysis analysis = analyze(gen, options);
  std::printf("matrix %s: n = %d, %d supernodes, grid 16x16\n\n", gen.name.c_str(),
              gen.matrix.n(), analysis.blocks.supernode_count());

  for (trees::TreeScheme scheme :
       {trees::TreeScheme::kFlat, trees::TreeScheme::kShiftedBinary}) {
    const pselinv::Plan plan(analysis.blocks, dist::ProcessGrid(16, 16),
                             driver::tree_options_for(scheme));
    const sim::Machine machine(driver::timing_machine(/*jitter_sigma=*/0.0));
    std::vector<sim::TraceEvent> trace;
    const pselinv::RunResult run = run_pselinv(
        plan, machine, pselinv::ExecutionMode::kTrace, nullptr, &trace);

    std::printf("=== %s: makespan %.4f s, %zu messages ===\n",
                trees::scheme_name(scheme), run.makespan, trace.size());
    const driver::CommTimeline timeline(trace, run.makespan, buckets,
                                        pselinv::kCommClassCount);
    std::printf("%s\n", timeline.render(&pselinv::comm_class_name).c_str());
  }
  std::printf(
      "Reading: all phases overlap (no barriers — the asynchronous task\n"
      "model of the paper); under the Flat-Tree the Col-Bcast band stretches\n"
      "out as root NICs serialize, under the Shifted Binary-Tree it drains\n"
      "faster and the whole timeline shortens.\n");
  return 0;
}
