/// \file quickstart.cpp
/// \brief Minimal end-to-end tour of the psi library.
///
/// Builds a small sparse matrix, runs the full pipeline — fill ordering,
/// symbolic analysis, supernodal LU, sequential selected inversion — then
/// repeats the inversion on the simulated distributed machine with the
/// paper's Shifted Binary-Tree collectives and verifies that both agree
/// with the dense inverse.
///
///   ./quickstart
#include <cstdio>

#include "driver/experiment.hpp"
#include "numeric/selinv.hpp"
#include "pselinv/engine.hpp"
#include "sparse/generators.hpp"

int main() {
  using namespace psi;

  // 1. A test matrix: 2-D Laplacian on a 12x12 grid (n = 144), symmetric
  //    and diagonally dominant. Any structurally symmetric SparseMatrix
  //    works — see sparse/matrix_market.hpp to load your own.
  const GeneratedMatrix gen = laplacian2d(12, 12, /*seed=*/42);
  std::printf("matrix: %s, n = %d, nnz = %lld\n", gen.name.c_str(),
              gen.matrix.n(), static_cast<long long>(gen.matrix.nnz()));

  // 2. Symbolic analysis: fill-reducing ordering (nested dissection),
  //    elimination tree, supernodes, block structure.
  AnalysisOptions options;
  options.ordering.method = OrderingMethod::kNestedDissection;
  options.ordering.dissection_leaf_size = 16;
  options.supernodes.max_size = 24;
  const SymbolicAnalysis analysis = analyze(gen, options);
  std::printf("analysis: %d supernodes, scalar nnz(L) = %lld, "
              "full-block nnz(L) = %lld\n",
              analysis.blocks.supernode_count(),
              static_cast<long long>(analysis.scalar_factor_nnz()),
              static_cast<long long>(analysis.blocks.factor_nnz_fullblock()));

  // 3. Numeric factorization A = LU (the paper's SuperLU_DIST step).
  SupernodalLU lu = SupernodalLU::factor(analysis);

  // 4. Sequential selected inversion (Algorithm 1 of the paper).
  SupernodalLU lu_for_seq = SupernodalLU::factor(analysis);
  const BlockMatrix ainv_seq = selected_inversion(lu_for_seq);
  std::printf("sequential selected inversion done; A^{-1}[0,0] = %.6f\n",
              ainv_seq.diag(0)(0, 0));

  // 5. Distributed selected inversion on a simulated 4x4 machine with the
  //    paper's Shifted Binary-Tree restricted collectives.
  const dist::ProcessGrid grid(4, 4);
  const pselinv::Plan plan(
      analysis.blocks, grid,
      driver::tree_options_for(trees::TreeScheme::kShiftedBinary));
  const sim::Machine machine(driver::edison_config());
  const pselinv::RunResult run =
      run_pselinv(plan, machine, pselinv::ExecutionMode::kNumeric, &lu);
  std::printf("distributed run: %d ranks, %lld messages events, "
              "simulated time %.3f ms\n",
              grid.size(), static_cast<long long>(run.events),
              1e3 * run.makespan);

  // 6. Verify distributed == sequential on every stored block.
  double max_err = 0.0;
  const BlockStructure& bs = analysis.blocks;
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    max_err = std::max(max_err,
                       max_abs_diff(run.ainv->block(k, k), ainv_seq.block(k, k)));
    for (Int i : bs.struct_of[static_cast<std::size_t>(k)])
      max_err = std::max(max_err, max_abs_diff(run.ainv->block(i, k),
                                               ainv_seq.block(i, k)));
  }
  std::printf("max |distributed - sequential| over all selected blocks: %.2e\n",
              max_err);
  std::printf(max_err < 1e-10 ? "OK\n" : "MISMATCH\n");
  return max_err < 1e-10 ? 0 : 1;
}
