/// \file unsymmetric_inverse.cpp
/// \brief The paper's future-work extension in action: selected inversion of
/// a matrix with UNSYMMETRIC VALUES over a symmetric pattern ("the same
/// communication strategy can be naturally extended to asymmetric matrices",
/// paper §V).
///
/// Demonstrates the mirrored U-side communication phases (Diag-Row-Bcast,
/// Cross-Send-U, Row-Bcast, Col-Reduce-Up) that replace the symmetric
/// transpose shortcut, verifies the distributed result against the
/// sequential reference, and compares the per-class traffic of the symmetric
/// and unsymmetric engines on the same pattern.
///
///   ./unsymmetric_inverse
#include <cstdio>

#include "driver/experiment.hpp"
#include "numeric/selinv.hpp"
#include "pselinv/engine.hpp"
#include "pselinv/volume_analysis.hpp"
#include "sparse/generators.hpp"

int main() {
  using namespace psi;

  // A convection-diffusion-like operator: symmetric 3-D stencil pattern,
  // unsymmetric values (as from upwinding).
  const GeneratedMatrix gen = fem3d(4, 4, 3, 2, 77, ValueKind::kUnsymmetric);
  std::printf("matrix: %s (unsymmetric values), n = %d, nnz = %lld\n",
              gen.name.c_str(), gen.matrix.n(),
              static_cast<long long>(gen.matrix.nnz()));

  AnalysisOptions options;
  options.ordering.method = OrderingMethod::kGeometricDissection;
  options.supernodes.max_size = 16;
  const SymbolicAnalysis analysis = analyze(gen, options);

  // Sequential reference (Algorithm 1, general LU form).
  SupernodalLU lu_seq = SupernodalLU::factor(analysis);
  const BlockMatrix reference = selected_inversion(lu_seq);

  // Distributed run with the mirrored U-side phases.
  const dist::ProcessGrid grid(4, 4);
  const pselinv::Plan plan(
      analysis.blocks, grid,
      driver::tree_options_for(trees::TreeScheme::kShiftedBinary),
      pselinv::ValueSymmetry::kUnsymmetric);
  SupernodalLU lu_dist = SupernodalLU::factor(analysis);
  const sim::Machine machine(driver::edison_config());
  const pselinv::RunResult run = run_pselinv(
      plan, machine, pselinv::ExecutionMode::kNumeric, &lu_dist);

  double max_err = 0.0;
  const BlockStructure& bs = analysis.blocks;
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    max_err = std::max(max_err,
                       max_abs_diff(run.ainv->block(k, k), reference.block(k, k)));
    for (Int i : bs.struct_of[static_cast<std::size_t>(k)]) {
      max_err = std::max(max_err,
                         max_abs_diff(run.ainv->block(i, k), reference.block(i, k)));
      max_err = std::max(max_err,
                         max_abs_diff(run.ainv->block(k, i), reference.block(k, i)));
    }
  }
  std::printf("distributed vs sequential max block error: %.2e (%s)\n", max_err,
              max_err < 1e-10 ? "OK" : "MISMATCH");

  // Asymmetry shows in A^{-1} too: compare one off-diagonal pair.
  if (bs.supernode_count() > 1 && !bs.struct_of[0].empty()) {
    const Int i = bs.struct_of[0][0];
    const DenseMatrix lower = run.ainv->block(i, 0);
    const DenseMatrix upper = run.ainv->block(0, i);
    std::printf("|A^{-1}_{%d,0} - A^{-1T}_{0,%d}|_max = %.3e "
                "(nonzero: the inverse is genuinely unsymmetric)\n",
                i, i, max_abs_diff(lower, upper.transposed()));
  }

  // Traffic comparison: the unsymmetric engine roughly doubles the volume
  // with the mirrored phases.
  const pselinv::Plan plan_sym(
      analysis.blocks, grid,
      driver::tree_options_for(trees::TreeScheme::kShiftedBinary));
  const auto vol_sym = pselinv::analyze_volume(plan_sym);
  const auto vol_unsym = pselinv::analyze_volume(plan);
  std::printf("\nper-class total traffic (MB):\n");
  for (int c = 0; c < pselinv::kCommClassCount; ++c) {
    Count sym_bytes = 0, unsym_bytes = 0;
    for (Count b : vol_sym.of(c).bytes_sent()) sym_bytes += b;
    for (Count b : vol_unsym.of(c).bytes_sent()) unsym_bytes += b;
    if (sym_bytes == 0 && unsym_bytes == 0) continue;
    std::printf("  %-16s symmetric %8.3f   unsymmetric %8.3f\n",
                pselinv::comm_class_name(c),
                static_cast<double>(sym_bytes) / (1 << 20),
                static_cast<double>(unsym_bytes) / (1 << 20));
  }
  return max_err < 1e-10 ? 0 : 1;
}
