/// \file electronic_structure.cpp
/// \brief PEXSI-style electronic-structure workload: the application the
/// paper's communication optimization was built for (§I, §V).
///
/// In the pole expansion and selected inversion (PEXSI) method, the density
/// matrix of a Kohn-Sham Hamiltonian H is approximated as a sum over poles:
///   P ≈ sum_l  Im( w_l * (H - z_l S)^{-1} )
/// and only the SELECTED elements of each inverse are needed (those matching
/// the sparsity of H). Each pole is an independent selected inversion —
/// typically run simultaneously on different processor subgroups, which is
/// why per-inversion scalability and low run-to-run variability matter so
/// much (paper §V).
///
/// This example builds a DG-discretized model Hamiltonian, runs a loop of
/// shifted selected inversions (real shifts stand in for the complex poles;
/// psi is real-valued), accumulates a pole-summed density-like matrix, and
/// reports per-pole simulated times on a distributed machine with the
/// paper's Shifted Binary-Tree collectives.
///
///   ./electronic_structure
#include <cstdio>
#include <vector>

#include "driver/experiment.hpp"
#include "numeric/selinv.hpp"
#include "pselinv/engine.hpp"
#include "sparse/generators.hpp"

int main() {
  using namespace psi;

  // Model DG Hamiltonian: 2-D element mesh, dense 8x8 element blocks.
  GeneratedMatrix ham = dg2d(5, 5, 8, /*seed=*/7);
  std::printf("DG Hamiltonian: n = %d, nnz = %lld\n", ham.matrix.n(),
              static_cast<long long>(ham.matrix.nnz()));

  // Shifts mimicking a pole expansion: H + sigma_l I, all diagonally
  // dominant by construction of the generator plus positive shifts.
  const std::vector<double> shifts{0.5, 1.0, 2.0, 4.0};
  const std::vector<double> weights{0.4, 0.3, 0.2, 0.1};

  AnalysisOptions options = driver::default_analysis_options();
  const dist::ProcessGrid grid(6, 6);
  const sim::Machine machine(driver::edison_config(/*jitter_sigma=*/0.2, 1));

  // The sparsity pattern is shift-independent: analyze once, reuse the plan
  // for every pole — exactly the preprocessing amortization the paper
  // describes (§III: participant lists are fixed once L, U and the grid
  // are known).
  const SymbolicAnalysis analysis = analyze(ham, options);
  const pselinv::Plan plan(
      analysis.blocks, grid,
      driver::tree_options_for(trees::TreeScheme::kShiftedBinary));
  std::printf("plan: %d supernodes, %lld restricted collectives, "
              "%lld distinct communicators would be needed with MPI groups\n",
              analysis.blocks.supernode_count(),
              static_cast<long long>(plan.total_collectives()),
              static_cast<long long>(plan.distinct_communicators()));

  // "Density matrix" accumulator over the selected pattern: we accumulate
  // the diagonal blocks (the local density of states).
  std::vector<double> density(static_cast<std::size_t>(ham.matrix.n()), 0.0);

  double total_time = 0.0;
  for (std::size_t pole = 0; pole < shifts.size(); ++pole) {
    // Shifted matrix H + sigma I in the analyzed ordering.
    SparseMatrix shifted = analysis.matrix;
    for (Int j = 0; j < shifted.n(); ++j)
      for (Int p = shifted.pattern.col_ptr[j]; p < shifted.pattern.col_ptr[j + 1];
           ++p)
        if (shifted.pattern.row_idx[p] == j)
          shifted.values[static_cast<std::size_t>(p)] += shifts[pole];

    SymbolicAnalysis pole_analysis = analysis;  // same structure, new values
    pole_analysis.matrix = std::move(shifted);
    SupernodalLU lu = SupernodalLU::factor(pole_analysis);

    const pselinv::RunResult run =
        run_pselinv(plan, machine, pselinv::ExecutionMode::kNumeric, &lu);
    total_time += run.makespan;

    // Accumulate weighted diagonal of the selected inverse.
    const BlockStructure& bs = analysis.blocks;
    for (Int k = 0; k < bs.supernode_count(); ++k) {
      const DenseMatrix diag = run.ainv->block(k, k);
      for (Int c = 0; c < diag.cols(); ++c) {
        const Int col = bs.part.first_col(k) + c;
        // Map back to the user's original row index.
        const Int original = analysis.perm.old_of(col);
        density[static_cast<std::size_t>(original)] +=
            weights[pole] * diag(c, c);
      }
    }
    std::printf("pole %zu (shift %.2f): simulated inversion time %.3f ms\n",
                pole, shifts[pole], 1e3 * run.makespan);
  }

  double trace = 0.0;
  for (double d : density) trace += d;
  std::printf("\npole-summed density diagonal: trace = %.6f over n = %d\n",
              trace, ham.matrix.n());
  std::printf("total simulated selected-inversion time: %.3f ms for %zu poles\n",
              1e3 * total_time, shifts.size());
  return 0;
}
