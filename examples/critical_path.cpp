/// \file critical_path.cpp
/// \brief Exact critical-path and contention analysis of a simulated
/// selected inversion — the observability layer (psi::obs) applied to the
/// paper's central claim.
///
/// Replays the audikw_1-analog trace run on a 46x46 grid (the shape of the
/// paper's 2,116-rank point) under the Flat and the Shifted Binary trees,
/// recording every event's causal links, then:
///   * extracts the simulated-time critical path and prints its exact
///     decomposition (execution vs send-queue / transfer / latency /
///     recv-queue, per collective) — the Shifted tree's communication share
///     of the binding chain is visibly shorter;
///   * attributes per-NIC and per-tier contention (queueing vs transfer) —
///     the Flat tree's root NIC residency hot spot stands out;
///   * writes Chrome trace_event JSON per scheme, loadable in
///     chrome://tracing or https://ui.perfetto.dev.
///
///   ./critical_path [pr] [pc] [scale] [out_dir]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "driver/experiment.hpp"
#include "driver/obs_report.hpp"
#include "driver/paper_matrices.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/recorder.hpp"
#include "pselinv/engine.hpp"

int main(int argc, char** argv) {
  using namespace psi;
  const int pr = argc > 1 ? std::atoi(argv[1]) : 46;
  const int pc = argc > 2 ? std::atoi(argv[2]) : pr;
  const double scale = argc > 3 ? std::atof(argv[3]) : 0.77;
  const std::string out_dir = argc > 4 ? argv[4] : "bench_out";
  std::filesystem::create_directories(out_dir);

  AnalysisOptions options = driver::default_analysis_options();
  options.supernodes.max_size = 32;
  const GeneratedMatrix gen =
      driver::make_paper_matrix(driver::PaperMatrix::kAudikw1, scale);
  const SymbolicAnalysis analysis = analyze(gen, options);
  std::printf("matrix %s: n = %d, %d supernodes, grid %dx%d (%d ranks)\n\n",
              gen.name.c_str(), gen.matrix.n(),
              analysis.blocks.supernode_count(), pr, pc, pr * pc);

  const sim::MachineConfig config = driver::timing_machine(/*jitter_sigma=*/0.0);
  const sim::Machine machine(config);

  const trees::TreeScheme schemes[2] = {trees::TreeScheme::kFlat,
                                        trees::TreeScheme::kShiftedBinary};
  double comm_path[2] = {0.0, 0.0};
  double residency[2] = {0.0, 0.0};
  for (int i = 0; i < 2; ++i) {
    const trees::TreeScheme scheme = schemes[i];
    const pselinv::Plan plan(analysis.blocks, dist::ProcessGrid(pr, pc),
                             driver::tree_options_for(scheme));
    obs::Recorder recorder;
    const pselinv::RunResult run =
        run_pselinv(plan, machine, pselinv::ExecutionMode::kTrace, nullptr,
                    nullptr, &recorder);
    std::printf("=== %s: makespan %.4f s, %lld events ===\n",
                trees::scheme_name(scheme), run.makespan,
                static_cast<long long>(run.events));

    const driver::ObsAnalysis obs_analysis =
        driver::analyze_recording(recorder, config);
    std::printf("%s", driver::render_critical_path(obs_analysis.path).c_str());
    std::printf("%s", driver::render_contention(obs_analysis.contention).c_str());
    comm_path[i] = obs_analysis.path.comm_seconds();
    residency[i] = obs_analysis.contention.max_send_residency();

    obs::ChromeTraceOptions trace_options;
    trace_options.class_name = &pselinv::comm_class_name;
    std::string slug = trees::scheme_name(scheme);
    for (char& c : slug)
      if (c == ' ') c = '_';
    const std::string trace_path =
        out_dir + "/critical_path_" + slug + ".trace.json";
    write_chrome_trace(recorder, trace_path, trace_options);
    std::printf("chrome trace written to %s "
                "(open in chrome://tracing or ui.perfetto.dev)\n\n",
                trace_path.c_str());
  }

  std::printf("Flat vs Shifted Binary at %d ranks:\n", pr * pc);
  std::printf("  communication on the critical path: %.4f s -> %.4f s (%.2fx)\n",
              comm_path[0], comm_path[1],
              comm_path[1] > 0.0 ? comm_path[0] / comm_path[1] : 0.0);
  std::printf("  max per-link send residency:        %.4f s -> %.4f s (%.2fx)\n",
              residency[0], residency[1],
              residency[1] > 0.0 ? residency[0] / residency[1] : 0.0);
  std::printf(
      "Reading: the Flat tree concentrates every broadcast on the root's\n"
      "NIC — its residency and the send-queue share of the critical path\n"
      "dominate; the Shifted Binary tree spreads the load and shortens the\n"
      "communication part of the binding chain (paper §IV).\n");
  return 0;
}
