/// \file network_variability.cpp
/// \brief Reproduces the paper's run-to-run variability story (§IV-B,
/// Figure 8 error bars) in isolation.
///
/// PSelInv is deterministic, yet the paper observed large timing variation
/// across identical runs — attributed to the inhomogeneous network (job
/// placement, shared routers, background traffic). Here we run the same
/// trace-mode selected inversion many times, re-seeding only the machine's
/// network-jitter field (a fresh seed = a fresh placement), and compare the
/// spread under Flat vs Shifted Binary trees at two scales.
///
///   ./network_variability [runs]
#include <cstdio>
#include <cstdlib>

#include "common/stats.hpp"
#include "driver/experiment.hpp"
#include "sparse/generators.hpp"
#include "pselinv/engine.hpp"

int main(int argc, char** argv) {
  using namespace psi;
  const int runs = argc > 1 ? std::atoi(argv[1]) : 6;  // paper: 6 runs/point

  const GeneratedMatrix gen = fem3d(14, 14, 14, 3, 5);
  AnalysisOptions options = driver::default_analysis_options();
  options.supernodes.max_size = 32;
  const SymbolicAnalysis analysis = analyze(gen, options);
  std::printf("matrix %s: n = %d, %d supernodes; %d runs per configuration\n\n",
              gen.name.c_str(), gen.matrix.n(),
              analysis.blocks.supernode_count(), runs);

  std::printf("%-22s %8s %12s %12s %10s\n", "scheme", "ranks", "mean (s)",
              "stddev (s)", "rel (%)");
  for (const int p : {256, 1024}) {
    // calibrated timing machine; see driver::timing_machine()
    int pr = 0, pc = 0;
    driver::square_grid(p, pr, pc);
    double flat_sd = 0.0, shifted_sd = 0.0;
    for (trees::TreeScheme scheme :
         {trees::TreeScheme::kFlat, trees::TreeScheme::kShiftedBinary}) {
      const pselinv::Plan plan(analysis.blocks, dist::ProcessGrid(pr, pc),
                               driver::tree_options_for(scheme));
      SampleStats stats;
      for (int run = 0; run < runs; ++run) {
        const sim::Machine machine(driver::timing_machine(
            /*jitter_sigma=*/0.35, static_cast<std::uint64_t>(run) + 1));
        stats.add(run_pselinv(plan, machine, pselinv::ExecutionMode::kTrace)
                      .makespan);
      }
      if (scheme == trees::TreeScheme::kFlat) flat_sd = stats.stddev();
      else shifted_sd = stats.stddev();
      std::printf("%-22s %8d %12.4f %12.4f %9.1f%%\n",
                  trees::scheme_name(scheme), p, stats.mean(), stats.stddev(),
                  100.0 * stats.stddev() / stats.mean());
    }
    if (shifted_sd > 0.0)
      std::printf("  -> stddev reduction at %d ranks: %.1fx "
                  "(paper: >4x at scale)\n\n",
                  p, flat_sd / shifted_sd);
  }
  return 0;
}
