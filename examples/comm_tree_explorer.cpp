/// \file comm_tree_explorer.cpp
/// \brief Standalone exploration of the restricted-collective tree schemes,
/// independent of the selected-inversion pipeline.
///
/// Emulates the paper's §III discussion: many concurrent broadcasts over
/// the same 32-rank processor-column group, one tree per collective. Prints
/// per-scheme per-rank sent volume (who forwards how much), the depth /
/// internal-node statistics, and a drawing of one example tree per scheme.
///
///   ./comm_tree_explorer [receivers] [collectives]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stats.hpp"
#include "trees/comm_tree.hpp"
#include "trees/volume.hpp"

namespace {

using namespace psi;

void draw_tree(const trees::CommTree& tree, int rank, int depth) {
  std::printf("%*sP%d\n", 2 * depth, "", rank);
  for (int child : tree.children_of(rank)) draw_tree(tree, child, depth + 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psi;
  const int receivers = argc > 1 ? std::atoi(argv[1]) : 15;
  const int collectives = argc > 2 ? std::atoi(argv[2]) : 500;

  std::vector<int> group;
  for (int r = 1; r <= receivers; ++r) group.push_back(r);

  for (trees::TreeScheme scheme :
       {trees::TreeScheme::kFlat, trees::TreeScheme::kBinary,
        trees::TreeScheme::kShiftedBinary, trees::TreeScheme::kRandomPerm,
        trees::TreeScheme::kBinomial, trees::TreeScheme::kShiftedBinomial}) {
    trees::TreeOptions options;
    options.scheme = scheme;

    // One example tree, drawn.
    const trees::CommTree example = trees::CommTree::build(options, 0, group, 3);
    std::printf("=== %s (root P0, %d receivers) ===\n",
                trees::scheme_name(scheme), receivers);
    draw_tree(example, 0, 0);
    std::printf("depth %d, internal nodes %d\n", example.depth(),
                example.internal_node_count());

    // Aggregate volume over many concurrent collectives (1 MB payloads).
    trees::VolumeAccumulator acc(receivers + 1);
    for (int id = 0; id < collectives; ++id) {
      const trees::CommTree tree =
          trees::CommTree::build(options, 0, group,
                                 static_cast<std::uint64_t>(id));
      acc.add_bcast(tree, 1 << 20);
    }
    SampleStats stats;
    std::printf("per-receiver forwarded MB over %d broadcasts: ", collectives);
    for (int r = 1; r <= receivers; ++r) {
      const double mb = static_cast<double>(
                            acc.bytes_sent()[static_cast<std::size_t>(r)]) /
                        (1 << 20);
      stats.add(mb);
      std::printf("%.0f ", mb);
    }
    std::printf("\n-> min %.0f, max %.0f, stddev %.1f MB "
                "(root sent %.0f MB)\n\n",
                stats.min(), stats.max(), stats.stddev(),
                static_cast<double>(acc.bytes_sent()[0]) / (1 << 20));
  }
  std::printf(
      "Observe the paper's §III story: Flat loads only the root; Binary\n"
      "always promotes the lowest receivers to internal nodes (max load with\n"
      "starved high ranks); the Shifted Binary-Tree spreads forwarding "
      "evenly.\n");
  return 0;
}
